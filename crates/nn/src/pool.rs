//! Persistent work-crew thread pool for the compute hot paths.
//!
//! Every parallel site in the workspace (GEMM row/column blocks, per-sample
//! convolution lowering, the Hopkins kernel loops in `ganopc-litho`, the
//! per-sample lithography gradients in `ganopc-core`) funnels through this
//! module. Worker threads are created **lazily** up to [`max_threads`]`- 1`
//! (the dispatching thread is always the remaining participant), park on a
//! condvar when idle, and are handed work through an allocation-free
//! descriptor: one type-erased `(fn ptr, ctx ptr)` pair plus a chunk count,
//! published under a mutex and claimed chunk-by-chunk through a
//! sequence-guarded atomic. A steady-state dispatch therefore costs two
//! mutex sections and a condvar broadcast instead of the former
//! spawn-plus-join of a fresh thread generation per call.
//!
//! Guarantees, unchanged from the scoped-spawn era:
//!
//! * **One knob.** `GANOPC_THREADS` caps every dispatch in the process; the
//!   default is [`std::thread::available_parallelism`]. The variable is read
//!   once; [`set_max_threads`] overrides it at runtime. The crew grows
//!   lazily up to the current cap; lowering the cap takes effect on the next
//!   dispatch (surplus workers stay parked — they are never killed).
//! * **Deterministic results.** Jobs are split into contiguous, balanced
//!   (±1 job) chunks whose boundaries depend only on the job count and the
//!   thread cap, and per-job results are returned **in job order** no matter
//!   which worker ran which chunk. Callers that reduce do so sequentially
//!   over that ordered output, so floating-point results are bit-identical
//!   for any thread count.
//! * **No oversubscription.** A job that itself calls into the pool (e.g. a
//!   GEMM inside a per-sample convolution job) executes the nested call
//!   inline on its current thread instead of dispatching again.
//! * **No poisoned crew.** A panicking job is caught on the worker, the
//!   dispatch runs to quiescence (remaining chunks are skipped), and the
//!   panic payload then resumes on the caller. The crew survives and serves
//!   the next dispatch.

use ganopc_obs as obs;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    /// Set while a crew worker (or the dispatching thread, during its own
    /// chunk execution) is running jobs; nested pool calls on such a thread
    /// degrade to the serial path.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runtime thread-count override installed by [`set_max_threads`]
/// (`0` = unset, fall through to the environment/default cap).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide cap from `GANOPC_THREADS` / `available_parallelism`,
/// resolved once: `std::env::var` allocates a `String`, and [`max_threads`]
/// sits on every hot-path dispatch, which must stay allocation-free.
static ENV_CAP: OnceLock<usize> = OnceLock::new();

/// Maximum number of threads (crew workers + the dispatching thread) a
/// dispatch may use.
///
/// A [`set_max_threads`] override wins; otherwise the `GANOPC_THREADS`
/// environment variable, read **once** per process (values `< 1` or
/// unparsable fall back to [`std::thread::available_parallelism`]).
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced >= 1 {
        return forced;
    }
    *ENV_CAP.get_or_init(|| {
        std::env::var("GANOPC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Overrides [`max_threads`] for the whole process (`None` restores the
/// environment/default cap). The crew grows lazily up to the new cap on the
/// next dispatch; shrinking parks the surplus workers (they are reused if
/// the cap rises again). This is how the determinism and allocation tests
/// switch thread counts at runtime, since the environment variable is only
/// consulted once.
pub fn set_max_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// True when the calling thread is currently executing pool jobs (nested
/// parallel sections run inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Number of crew workers spawned so far (excludes the dispatching thread).
/// Monotonic: workers park when idle but are never torn down.
pub fn crew_workers() -> usize {
    crew().state.lock().map_or(0, |st| st.workers)
}

// ---------------------------------------------------------------------------
// Crew internals
// ---------------------------------------------------------------------------

/// Upper bound on chunks per dispatch: chunk-completion bookkeeping lives in
/// `u64` bitmaps, and the claim word packs the chunk cursor into its low
/// byte. 64 concurrent chunks is far beyond any host this targets.
const MAX_CHUNKS: usize = 64;

/// Bits of the claim word reserved for the chunk cursor.
const CLAIM_SEQ_SHIFT: u32 = 8;

/// One dispatch descriptor: a type-erased chunk runner and the caller-stack
/// context it closes over. `run(ctx, i)` executes chunk `i ∈ [0, chunks)`.
#[derive(Clone, Copy)]
struct Task {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    chunks: usize,
}

// SAFETY: a `Task` only crosses threads through the crew's state mutex, and
// its `ctx` pointer is only dereferenced by `run` for chunks claimed through
// the sequence-guarded claim word. The dispatching thread blocks until every
// claimed chunk is accounted for, so `ctx` (a reference to its stack frame)
// outlives every dereference; after that, stale copies of the pointer may
// linger in crew state but are never dereferenced again (their dispatch's
// claims are exhausted and the sequence guard rejects new ones).
unsafe impl Send for Task {}

/// Mutex-guarded crew state.
struct State {
    /// Dispatch sequence number; bumped once per dispatch.
    seq: u64,
    /// Current (or most recent) dispatch descriptor.
    task: Option<Task>,
    /// Chunks of the current dispatch not yet accounted done/skipped/panicked.
    pending: usize,
    /// Bitmap of chunks that ran to completion.
    completed: u64,
    /// Bitmap of chunks skipped after a panic elsewhere.
    skipped: u64,
    /// First panic payload caught during the current dispatch.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// Worker threads spawned so far.
    workers: usize,
}

/// The persistent crew: dispatch serialization, parked-worker wakeup, and
/// the chunk-claim word.
struct Crew {
    /// Serializes dispatches: exactly one runs at a time; concurrent
    /// non-worker callers queue here.
    dispatch: Mutex<()>,
    state: Mutex<State>,
    /// Workers park here waiting for `state.seq` to advance.
    work: Condvar,
    /// The dispatching thread parks here waiting for `state.pending == 0`.
    done: Condvar,
    /// Packed `(seq << 8) | next_chunk` claim cursor. The sequence guard
    /// makes a claim race between an old dispatch's straggler worker and a
    /// new dispatch impossible: claims are CAS-validated against the
    /// claimant's own dispatch sequence.
    claim: AtomicU64,
    /// Set by the first panicking chunk; later chunks of the same dispatch
    /// are skipped (accounted, not run) so the dispatch quiesces quickly.
    abort: AtomicBool,
}

static CREW: OnceLock<Crew> = OnceLock::new();

fn crew() -> &'static Crew {
    CREW.get_or_init(|| Crew {
        dispatch: Mutex::new(()),
        state: Mutex::new(State {
            seq: 0,
            task: None,
            pending: 0,
            completed: 0,
            skipped: 0,
            panic: None,
            workers: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
        claim: AtomicU64::new(0),
        abort: AtomicBool::new(false),
    })
}

/// Balanced contiguous chunk bounds: chunk `i` of `chunks` over `total`
/// jobs. Sizes differ by at most one job (the first `total % chunks` chunks
/// take the extra), so no worker sits idle while another holds two chunks'
/// worth — the fix for the old `div_ceil` peeling, which could produce
/// fewer batches than workers.
// lint: hot-path
fn chunk_bounds(chunk: usize, total: usize, chunks: usize) -> Range<usize> {
    debug_assert!(chunk < chunks && chunks <= total);
    let base = total / chunks;
    let rem = total % chunks;
    let start = chunk * base + chunk.min(rem);
    let len = base + usize::from(chunk < rem);
    start..start + len
}

/// Threads a dispatch over `total` jobs may use (0 or 1 means: run inline).
// lint: hot-path
fn plan_threads(total: usize) -> usize {
    max_threads().min(total).min(MAX_CHUNKS)
}

/// Body of one crew worker: park until the dispatch sequence advances, then
/// claim and execute chunks of the published task until none remain.
/// `worker` is this thread's stable crew index, used only to attribute
/// claimed chunks in the observability layer.
fn worker_loop(worker: usize) {
    IN_WORKER.with(|w| w.set(true));
    let crew = crew();
    let mut seen = 0u64;
    loop {
        let (task, seq) = {
            // PANIC: the crew never panics while holding its mutexes (user
            // code runs outside them, under catch_unwind), so the lock
            // cannot be poisoned.
            let mut st = crew.state.lock().expect("crew state lock");
            let mut parked = false;
            loop {
                if st.seq > seen {
                    seen = st.seq;
                    if parked {
                        obs::counter_add(obs::Counter::PoolWorkerWakes, 1);
                    }
                    break (st.task, st.seq);
                }
                parked = true;
                obs::counter_add(obs::Counter::PoolWorkerParks, 1);
                // PANIC: see lock above — poisoning is unreachable.
                st = crew.work.wait(st).expect("crew state lock");
            }
        };
        if let Some(task) = task {
            let claimed = execute_chunks(task, seq);
            if claimed > 0 {
                obs::worker_claims_add(worker, claimed as u64);
            }
        }
    }
}

/// Claims one chunk of dispatch `seq`, or `None` when the dispatch's chunks
/// are exhausted or a newer dispatch has replaced it (a straggler worker
/// holding an old task copy must not touch the new claim cursor).
// lint: hot-path
fn claim_chunk(seq: u64, chunks: usize) -> Option<usize> {
    let crew = crew();
    let mut cur = crew.claim.load(Ordering::Acquire);
    loop {
        if cur >> CLAIM_SEQ_SHIFT != seq {
            return None;
        }
        let chunk = (cur & ((1 << CLAIM_SEQ_SHIFT) - 1)) as usize;
        if chunk >= chunks {
            return None;
        }
        match crew.claim.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(chunk),
            Err(seen) => cur = seen,
        }
    }
}

/// Claims and executes chunks of `task` until none remain, then accounts
/// the batch under the state lock. Shared by workers and the dispatching
/// thread. A panicking chunk is caught here: the payload is stored (first
/// wins), the abort flag makes the remaining chunks skip, and the dispatch
/// still quiesces — the crew is never poisoned. Returns the number of
/// chunks this thread claimed, so callers can attribute them (per-worker
/// claim slots, dispatcher-inline counter).
// lint: hot-path
fn execute_chunks(task: Task, seq: u64) -> usize {
    let crew = crew();
    let mut done_mask = 0u64;
    let mut skip_mask = 0u64;
    let mut processed = 0usize;
    let mut payload: Option<Box<dyn std::any::Any + Send + 'static>> = None;
    while let Some(chunk) = claim_chunk(seq, task.chunks) {
        processed += 1;
        if crew.abort.load(Ordering::Relaxed) {
            skip_mask |= 1 << chunk;
            continue;
        }
        // SAFETY: `chunk` was claimed through the sequence-guarded cursor,
        // so it belongs to the dispatch that published `task`, whose `ctx`
        // still lives on the blocked dispatcher's stack; each chunk index is
        // claimed exactly once, so chunk-level work never aliases.
        match catch_unwind(AssertUnwindSafe(|| unsafe { (task.run)(task.ctx, chunk) })) {
            Ok(()) => done_mask |= 1 << chunk,
            Err(p) => {
                crew.abort.store(true, Ordering::Relaxed);
                if payload.is_none() {
                    payload = Some(p);
                }
            }
        }
    }
    if processed > 0 {
        // PANIC: the crew never panics while holding its mutexes — see
        // worker_loop.
        let mut st = crew.state.lock().expect("crew state lock");
        st.completed |= done_mask;
        st.skipped |= skip_mask;
        if st.panic.is_none() {
            st.panic = payload;
        }
        st.pending -= processed;
        if st.pending == 0 {
            crew.done.notify_all();
        }
    }
    processed
}

/// Ensures at least `target` workers exist, spawning the missing ones.
/// Spawn failures are swallowed: the dispatching thread claims every chunk
/// a missing worker would have, so a dispatch completes with any crew size.
// lint: cold
fn ensure_workers(st: &mut State, target: usize) {
    while st.workers < target {
        let worker = st.workers;
        let spawned = std::thread::Builder::new()
            .name("ganopc-crew".to_string())
            .spawn(move || worker_loop(worker))
            .is_ok();
        if !spawned {
            break;
        }
        st.workers += 1;
    }
}

/// Outcome of a dispatch that caught a panic: which chunks completed or
/// were skipped (for typed cleanup by the caller) and the payload to
/// resume with.
struct PanicOutcome {
    completed: u64,
    skipped: u64,
    payload: Box<dyn std::any::Any + Send + 'static>,
}

/// Publishes `(run, ctx, chunks)` to the crew, participates in execution,
/// and blocks until every chunk is accounted for. Allocation-free in the
/// steady state (worker spawn is a one-time cost per crew slot).
///
/// On return, no thread holds a reference derived from `ctx`.
// lint: hot-path
fn dispatch(
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    chunks: usize,
) -> Result<(), PanicOutcome> {
    debug_assert!((2..=MAX_CHUNKS).contains(&chunks), "dispatch chunk count {chunks} out of range");
    // Hard cap, enforced in release builds too: the claim word packs the
    // chunk cursor into its low CLAIM_SEQ_SHIFT bits (256 claims) and the
    // completed/skipped bitmaps hold one bit per chunk (64). A chunk count
    // above MAX_CHUNKS would silently corrupt both, so clamp — every planner
    // in this module already upholds the invariant via `plan_threads`, but a
    // future call site must not be able to break it silently.
    let chunks = chunks.min(MAX_CHUNKS);
    obs::counter_add(obs::Counter::PoolDispatches, 1);
    let crew = crew();
    // PANIC: held only around dispatch bookkeeping that cannot panic; user
    // code runs after this guard is acquired but poisoning requires a panic
    // *while holding* the mutex, and execution below never unwinds through
    // the guard (payloads are carried as values, resumed by the caller).
    let guard = crew.dispatch.lock().expect("crew dispatch lock");
    let (task, seq) = {
        // PANIC: see worker_loop — the crew never panics under its mutexes.
        let mut st = crew.state.lock().expect("crew state lock");
        st.seq += 1;
        let task = Task { run, ctx, chunks };
        st.task = Some(task);
        st.pending = chunks;
        st.completed = 0;
        st.skipped = 0;
        st.panic = None;
        crew.abort.store(false, Ordering::Relaxed);
        crew.claim.store(st.seq << CLAIM_SEQ_SHIFT, Ordering::Release);
        ensure_workers(&mut st, chunks - 1);
        crew.work.notify_all();
        (task, st.seq)
    };
    // The dispatching thread is a full participant; its own chunks count as
    // worker execution, so nested pool calls inside them run inline.
    let was_worker = IN_WORKER.with(|w| w.replace(true));
    let inline = execute_chunks(task, seq);
    IN_WORKER.with(|w| w.set(was_worker));
    obs::counter_add(obs::Counter::PoolChunksInline, inline as u64);
    // Quiesce: wait for straggler workers to account their claimed chunks.
    // PANIC: see worker_loop — the crew never panics under its mutexes.
    let mut st = crew.state.lock().expect("crew state lock");
    while st.pending > 0 {
        // PANIC: see worker_loop — poisoning is unreachable.
        st = crew.done.wait(st).expect("crew state lock");
    }
    st.task = None;
    let outcome = match st.panic.take() {
        None => Ok(()),
        Some(payload) => {
            Err(PanicOutcome { completed: st.completed, skipped: st.skipped, payload })
        }
    };
    drop(st);
    drop(guard);
    outcome
}

// ---------------------------------------------------------------------------
// Public dispatch surface
// ---------------------------------------------------------------------------

/// Context for [`run`]'s type-erased chunk thunk: raw views of the job and
/// result buffers plus the shared closure.
struct RunCtx<'a, J, R, F> {
    jobs: *mut J,
    results: *mut R,
    f: &'a F,
    total: usize,
    chunks: usize,
}

/// Executes one chunk of a [`run`] dispatch: moves each job out of the job
/// buffer, applies `f`, and writes the result at the same index.
///
/// # Safety
///
/// `ctx` must point to the dispatching [`run`]'s live `RunCtx` and each
/// chunk index must be executed at most once (both guaranteed by
/// [`dispatch`]'s claim protocol).
// lint: hot-path
unsafe fn run_thunk<J, R, F: Fn(J) -> R>(ctx: *const (), chunk: usize) {
    // SAFETY: per this function's contract, `ctx` is the live `RunCtx` of
    // the dispatch that claimed `chunk`.
    let ctx = unsafe { &*ctx.cast::<RunCtx<'_, J, R, F>>() };
    let range = chunk_bounds(chunk, ctx.total, ctx.chunks);
    for i in range {
        // SAFETY: chunk ranges partition `0..total` and each chunk runs at
        // most once, so job slot `i` is read exactly once (the caller
        // `set_len(0)`-ed the vector, so nothing else drops it) and result
        // slot `i` — within the result vector's capacity — is written
        // exactly once.
        unsafe {
            let job = std::ptr::read(ctx.jobs.add(i));
            std::ptr::write(ctx.results.add(i), (ctx.f)(job));
        }
    }
}

/// Runs `f` over `jobs` on the crew (up to [`max_threads`] participants,
/// dispatching thread included) and returns the results **in job order**.
///
/// Jobs are assigned to participants as contiguous, balanced chunks, so a
/// job may borrow disjoint `&mut` slices of a caller-owned buffer (hand
/// them out with `chunks_mut` before calling). Runs inline when the pool is
/// capped at one thread, when there is a single job, or when called from
/// inside another pool job.
///
/// Steady-state call sites that can express their work as index ranges
/// should prefer [`run_chunks`], which needs no job vector at all.
///
/// # Panics
///
/// Propagates the first panicking job's payload after the whole dispatch
/// has quiesced; the crew survives for subsequent dispatches.
// lint: hot-path
pub fn run<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let total = jobs.len();
    let chunks = plan_threads(total);
    if chunks <= 1 || in_worker() {
        // ALLOC: the result vector is the return value; the serial path
        // performs no other allocation.
        return jobs.into_iter().map(f).collect();
    }
    let mut jobs = jobs;
    // ALLOC: the result vector is the return value, written in place by the
    // chunk thunks; the dispatch machinery itself allocates nothing.
    let mut results: Vec<R> = Vec::with_capacity(total);
    let ctx =
        RunCtx { jobs: jobs.as_mut_ptr(), results: results.as_mut_ptr(), f: &f, total, chunks };
    // SAFETY: ownership of every job moves to the chunk thunks (each slot
    // read exactly once); clearing the length first means a panic anywhere
    // can at worst leak jobs, never double-drop them.
    unsafe { jobs.set_len(0) };
    match dispatch(
        run_thunk::<J, R, F> as unsafe fn(*const (), usize),
        std::ptr::from_ref(&ctx).cast(),
        chunks,
    ) {
        Ok(()) => {
            // SAFETY: every chunk completed, so all `total` result slots
            // were initialized by `run_thunk`.
            unsafe { results.set_len(total) };
            results
        }
        Err(outcome) => {
            for chunk in 0..chunks {
                let range = chunk_bounds(chunk, total, chunks);
                if outcome.completed & (1 << chunk) != 0 {
                    // SAFETY: a completed chunk initialized exactly its
                    // range of result slots; results.len() is still 0, so
                    // dropping here is the only drop.
                    unsafe {
                        std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                            results.as_mut_ptr().add(range.start),
                            range.len(),
                        ));
                    }
                } else if outcome.skipped & (1 << chunk) != 0 {
                    // SAFETY: a skipped chunk never touched its slots, so
                    // its jobs are still initialized and owned solely by
                    // this cleanup (jobs.len() is 0).
                    unsafe {
                        std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                            jobs.as_mut_ptr().add(range.start),
                            range.len(),
                        ));
                    }
                }
                // The panicking chunk itself is deliberately leaked: its
                // read/write progress is unknown, and leaking beats a
                // possible double-drop.
            }
            resume_unwind(outcome.payload)
        }
    }
}

/// Context for [`run_chunks`]'s type-erased thunk.
struct ChunksCtx<'a, F> {
    f: &'a F,
    total: usize,
    chunks: usize,
}

/// Executes one chunk of a [`run_chunks`] dispatch.
///
/// # Safety
///
/// `ctx` must point to the dispatching [`run_chunks`]'s live `ChunksCtx`
/// (guaranteed by [`dispatch`]'s claim protocol).
// lint: hot-path
unsafe fn chunks_thunk<F: Fn(Range<usize>)>(ctx: *const (), chunk: usize) {
    // SAFETY: per this function's contract.
    let ctx = unsafe { &*ctx.cast::<ChunksCtx<'_, F>>() };
    (ctx.f)(chunk_bounds(chunk, ctx.total, ctx.chunks));
}

/// Indexed, allocation-free dispatch: splits `0..total` into contiguous,
/// balanced (±1) ranges — one per participant — and runs `f` once per
/// range on the crew. The ranges partition `0..total` exactly, so `f` may
/// hand out disjoint `&mut` views of shared buffers through
/// [`DisjointMut`]. Runs `f(0..total)` inline when the pool is capped at
/// one thread, when `total <= 1`, or when called from inside another pool
/// job; does nothing for `total == 0`.
///
/// This is the steady-state entry point for the hot dispatch sites: unlike
/// [`run`] it materializes no job vector and returns no result vector —
/// callers write results into caller-owned disjoint storage.
///
/// # Invariant
///
/// A dispatch never uses more than `MAX_CHUNKS` (64) ranges, regardless of
/// `total` or the thread cap: chunk completion is tracked in `u64` bitmaps
/// and the claim word reserves only the low byte for the chunk cursor.
/// `plan_threads` clamps to that bound here, and [`dispatch`] re-clamps
/// (plus `debug_assert!`s) so no future call site can overflow the packed
/// bookkeeping silently.
///
/// # Panics
///
/// Propagates the first panicking range's payload after the dispatch has
/// quiesced; the crew survives for subsequent dispatches.
// lint: hot-path
pub fn run_chunks<F>(total: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    let chunks = plan_threads(total);
    if chunks <= 1 || in_worker() {
        f(0..total);
        return;
    }
    let ctx = ChunksCtx { f: &f, total, chunks };
    if let Err(outcome) = dispatch(
        chunks_thunk::<F> as unsafe fn(*const (), usize),
        std::ptr::from_ref(&ctx).cast(),
        chunks,
    ) {
        resume_unwind(outcome.payload);
    }
}

/// Side-effect-only counterpart of [`run`]: executes `f` over `jobs` with
/// the same chunking, ordering and nesting guarantees, but returns nothing.
///
/// The serial path (one thread, one job, or already inside a worker) walks
/// the iterator directly **without allocating**. The parallel path collects
/// the jobs and delegates to [`run`]; steady-state hot paths should prefer
/// [`run_chunks`], which skips that collection entirely.
// lint: hot-path
pub fn for_each<I, F>(jobs: I, f: F)
where
    I: ExactSizeIterator,
    I::Item: Send,
    F: Fn(I::Item) + Sync,
{
    if plan_threads(jobs.len()) <= 1 || in_worker() {
        for job in jobs {
            f(job);
        }
        return;
    }
    // ALLOC: convenience parallel path only — hot call sites use run_chunks.
    run(jobs.collect(), f);
}

// ---------------------------------------------------------------------------
// Disjoint shared-buffer access for run_chunks call sites
// ---------------------------------------------------------------------------

/// A `Sync` view of a mutable slice that lets [`run_chunks`] jobs carve out
/// **disjoint** `&mut` elements or sub-slices concurrently.
///
/// Safe Rust cannot hand several closures simultaneous `&mut` access into
/// one buffer even when the touched regions never overlap; this wrapper
/// moves that proof obligation to the call site. The `run_chunks` contract
/// — ranges partition `0..total`, each executed exactly once — is what
/// call sites cite to discharge it.
pub struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: `DisjointMut` hands out element/sub-slice access across threads;
// callers uphold disjointness (see `index_mut`/`slice_mut` contracts), and
// `T: Send` makes moving that access between threads sound.
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}
// SAFETY: see the Sync impl above.
unsafe impl<T: Send> Send for DisjointMut<'_, T> {}

impl<'a, T> DisjointMut<'a, T> {
    /// Wraps a slice for disjoint parallel access. The borrow is held for
    /// `'a`, so the underlying buffer cannot be touched elsewhere while
    /// views are live.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointMut { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }

    /// Wrapped length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wrapped slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable reference to element `index`.
    ///
    /// # Safety
    ///
    /// `index < len()`, and no other live reference (from this or any
    /// thread) covers element `index` — callers typically guarantee this by
    /// deriving `index` from their exclusive [`run_chunks`] range.
    #[allow(clippy::mut_from_ref)] // the whole point: caller-proved disjoint &mut views
    #[inline]
    // lint: hot-path
    pub unsafe fn index_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        // SAFETY: per this method's contract.
        unsafe { &mut *self.ptr.add(index) }
    }

    /// A mutable sub-slice covering `range`.
    ///
    /// # Safety
    ///
    /// `range` is in bounds, and no other live reference covers any element
    /// of `range` — callers typically guarantee this by deriving `range`
    /// from their exclusive [`run_chunks`] range.
    #[allow(clippy::mut_from_ref)] // the whole point: caller-proved disjoint &mut views
    #[inline]
    // lint: hot-path
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: per this method's contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

/// Debug-build race detector for partitioned parallel writes: asserts that
/// the `(start, len)` index ranges of one shared buffer handed to pool
/// jobs as `&mut` chunks are pairwise disjoint. Two overlapping ranges mean
/// two workers may write the same elements concurrently — undefined
/// behaviour that safe code can only reach through an arithmetic slip in
/// the chunking math, which is exactly what this catches. Compiles to
/// nothing in release builds, so dispatch sites may call it unconditionally.
///
/// # Panics
///
/// Panics in debug builds when any two ranges overlap.
pub fn debug_assert_disjoint<I>(site: &str, ranges: I)
where
    I: IntoIterator<Item = (usize, usize)>,
{
    if !cfg!(debug_assertions) {
        return;
    }
    let mut sorted: Vec<(usize, usize)> = ranges.into_iter().collect();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        let ((a0, a_len), (b0, _)) = (w[0], w[1]);
        // PANIC: debug-build race detector — the whole point is to abort
        // before overlapping &mut partitions reach the workers.
        assert!(
            a0 + a_len <= b0,
            "{site}: overlapping parallel partition: [{a0}, {}) and [{b0}, ..)",
            a0 + a_len,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = run(jobs, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_own_disjoint_mut_slices() {
        let mut data = vec![0u32; 64];
        let jobs: Vec<(usize, &mut [u32])> = data.chunks_mut(16).enumerate().collect();
        run(jobs, |(idx, chunk)| {
            for v in chunk.iter_mut() {
                *v = idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 16);
        }
    }

    #[test]
    fn nested_run_executes_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let nested_inline = run(outer, |_| {
            // From inside a worker (or inline when capped at one thread), a
            // nested call must not spawn another generation of workers.
            let was_worker = in_worker();
            let inner = run(vec![1usize, 2, 3], |x| x * x);
            (was_worker || max_threads() == 1, inner)
        });
        for (ok, inner) in nested_inline {
            assert!(ok);
            assert_eq!(inner, vec![1, 4, 9]);
        }
    }

    #[test]
    fn for_each_covers_every_job() {
        let mut data = vec![0u32; 64];
        for_each(data.chunks_mut(16).enumerate(), |(idx, chunk)| {
            for v in chunk.iter_mut() {
                *v = idx as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 16 + 1);
        }
    }

    #[test]
    fn run_chunks_partitions_exactly() {
        let mut data = vec![0u32; 103];
        let dm = DisjointMut::new(&mut data);
        run_chunks(103, |range| {
            // SAFETY: run_chunks ranges partition 0..103, so this view is
            // disjoint from every other chunk's.
            let view = unsafe { dm.slice_mut(range.clone()) };
            for (v, i) in view.iter_mut().zip(range) {
                *v += 1 + i as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + i as u32, "element {i} visited wrongly");
        }
    }

    #[test]
    fn run_chunks_zero_and_one() {
        run_chunks(0, |_| panic!("must not run for total == 0"));
        let mut hits = 0;
        let hits_ref = &mut hits;
        let cell = std::sync::Mutex::new(hits_ref);
        run_chunks(1, |r| {
            assert_eq!(r, 0..1);
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn chunk_bounds_balance_within_one() {
        for total in 1..200usize {
            for chunks in 1..=total.min(MAX_CHUNKS) {
                let mut cursor = 0usize;
                let mut min_len = usize::MAX;
                let mut max_len = 0usize;
                for c in 0..chunks {
                    let r = chunk_bounds(c, total, chunks);
                    assert_eq!(r.start, cursor, "gap before chunk {c} of {chunks}/{total}");
                    assert!(!r.is_empty(), "empty chunk {c} of {chunks}/{total}");
                    min_len = min_len.min(r.len());
                    max_len = max_len.max(r.len());
                    cursor = r.end;
                }
                assert_eq!(cursor, total, "chunks do not cover {total}");
                assert!(
                    max_len - min_len <= 1,
                    "imbalance {min_len}..{max_len} for {chunks}/{total}"
                );
            }
        }
    }

    #[test]
    fn disjoint_partitions_pass() {
        // Exact tiling, a gap, and out-of-order ranges are all fine.
        debug_assert_disjoint("test", [(0, 16), (16, 16), (32, 16)]);
        debug_assert_disjoint("test", [(48, 8), (0, 16), (20, 4)]);
        debug_assert_disjoint("test", [(0, 0), (0, 4)]); // empty range
        debug_assert_disjoint("test", []);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overlapping parallel partition"))]
    fn overlapping_partition_trips_checker() {
        debug_assert_disjoint("test", [(0, 17), (16, 16)]);
    }

    #[test]
    fn runtime_override_caps_threads() {
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
