//! Shared scoped-worker utility for the compute hot paths.
//!
//! Every parallel site in the workspace (GEMM row/column blocks, per-sample
//! convolution lowering, the Hopkins kernel loops in `ganopc-litho`, the
//! per-sample lithography gradients in `ganopc-core`) funnels through
//! [`run`]. Centralizing this gives three guarantees:
//!
//! * **One knob.** `GANOPC_THREADS` caps every pool in the process; the
//!   default is [`std::thread::available_parallelism`]. The variable is read
//!   once (reading it per call would allocate a `String` on every hot-path
//!   dispatch); [`set_max_threads`] overrides it at runtime for tests.
//! * **Deterministic results.** Jobs are split into contiguous chunks and the
//!   per-job results are returned **in job order**, regardless of how many
//!   workers ran them. Callers that reduce (sum gradients, accumulate error)
//!   do so sequentially over that ordered vector, so floating-point results
//!   are bit-identical for any thread count.
//! * **No oversubscription.** A job that itself calls [`run`] (e.g. a GEMM
//!   inside a per-sample convolution job) executes the nested call inline on
//!   the worker thread instead of spawning a second generation of threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Set while a pool worker is executing jobs; nested [`run`] calls on
    /// such a thread degrade to the serial path.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runtime thread-count override installed by [`set_max_threads`]
/// (`0` = unset, fall through to the environment/default cap).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide cap from `GANOPC_THREADS` / `available_parallelism`,
/// resolved once: `std::env::var` allocates a `String`, and [`max_threads`]
/// sits on every hot-path dispatch, which must stay allocation-free.
static ENV_CAP: OnceLock<usize> = OnceLock::new();

/// Maximum number of worker threads a [`run`] call may use.
///
/// A [`set_max_threads`] override wins; otherwise the `GANOPC_THREADS`
/// environment variable, read **once** per process (values `< 1` or
/// unparsable fall back to [`std::thread::available_parallelism`]).
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced >= 1 {
        return forced;
    }
    *ENV_CAP.get_or_init(|| {
        std::env::var("GANOPC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Overrides [`max_threads`] for the whole process (`None` restores the
/// environment/default cap). This is how the determinism and allocation
/// tests switch thread counts at runtime, since the environment variable is
/// only consulted once.
pub fn set_max_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// True when the calling thread is already a pool worker (nested parallel
/// sections run inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Runs `f` over `jobs` on up to [`max_threads`] scoped workers and returns
/// the results **in job order**.
///
/// Jobs are assigned to workers as contiguous chunks, so a job may borrow
/// disjoint `&mut` slices of a caller-owned buffer (hand them out with
/// `chunks_mut` before calling). Runs inline when the pool is capped at one
/// thread, when there is a single job, or when called from inside another
/// [`run`] job.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have joined.
pub fn run<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let threads = max_threads().min(jobs.len());
    if threads <= 1 || in_worker() {
        return jobs.into_iter().map(f).collect();
    }

    let total = jobs.len();
    let chunk_len = total.div_ceil(threads);
    let mut batches: Vec<Vec<J>> = Vec::with_capacity(threads);
    let mut jobs = jobs;
    // Peel chunks off the back so each batch is built without reallocation,
    // then restore front-to-back order.
    while !jobs.is_empty() {
        let at = jobs.len().saturating_sub(chunk_len);
        batches.push(jobs.split_off(at));
    }
    batches.reverse();

    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                scope.spawn(move |_| {
                    IN_WORKER.with(|w| w.set(true));
                    batch.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(total);
        for handle in handles {
            // PANIC: deliberate propagation — a worker panic (a bug in the
            // job closure) must surface on the caller, not be swallowed.
            out.extend(handle.join().expect("pool worker panicked"));
        }
        out
    })
    // PANIC: deliberate propagation — see worker join above.
    .expect("pool scope panicked")
}

/// Debug-build race detector for partitioned parallel writes: asserts that
/// the `(start, len)` index ranges of one shared buffer handed to [`run`]
/// jobs as `&mut` chunks are pairwise disjoint. Two overlapping ranges mean
/// two workers may write the same elements concurrently — undefined
/// behaviour that safe code can only reach through an arithmetic slip in
/// the chunking math, which is exactly what this catches. Compiles to
/// nothing in release builds, so dispatch sites may call it unconditionally.
///
/// # Panics
///
/// Panics in debug builds when any two ranges overlap.
pub fn debug_assert_disjoint<I>(site: &str, ranges: I)
where
    I: IntoIterator<Item = (usize, usize)>,
{
    if !cfg!(debug_assertions) {
        return;
    }
    let mut sorted: Vec<(usize, usize)> = ranges.into_iter().collect();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        let ((a0, a_len), (b0, _)) = (w[0], w[1]);
        // PANIC: debug-build race detector — the whole point is to abort
        // before overlapping &mut partitions reach the workers.
        assert!(
            a0 + a_len <= b0,
            "{site}: overlapping parallel partition: [{a0}, {}) and [{b0}, ..)",
            a0 + a_len,
        );
    }
}

/// Side-effect-only counterpart of [`run`]: executes `f` over `jobs` with
/// the same chunking, ordering and nesting guarantees, but returns nothing.
///
/// The serial path (one thread, one job, or already inside a worker) walks
/// the iterator directly **without allocating**, which is what keeps the
/// per-sample convolution jobs allocation-free in the steady state; the
/// parallel path collects the jobs and delegates to [`run`] (the unit
/// results are zero-sized, so the result vector never touches the
/// allocator).
pub fn for_each<I, F>(jobs: I, f: F)
where
    I: ExactSizeIterator,
    I::Item: Send,
    F: Fn(I::Item) + Sync,
{
    if max_threads().min(jobs.len()) <= 1 || in_worker() {
        for job in jobs {
            f(job);
        }
        return;
    }
    run(jobs.collect(), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = run(jobs, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_own_disjoint_mut_slices() {
        let mut data = vec![0u32; 64];
        let jobs: Vec<(usize, &mut [u32])> = data.chunks_mut(16).enumerate().collect();
        run(jobs, |(idx, chunk)| {
            for v in chunk.iter_mut() {
                *v = idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 16);
        }
    }

    #[test]
    fn nested_run_executes_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let nested_inline = run(outer, |_| {
            // From inside a worker (or inline when capped at one thread), a
            // nested call must not spawn another generation of workers.
            let was_worker = in_worker();
            let inner = run(vec![1usize, 2, 3], |x| x * x);
            (was_worker || max_threads() == 1, inner)
        });
        for (ok, inner) in nested_inline {
            assert!(ok);
            assert_eq!(inner, vec![1, 4, 9]);
        }
    }

    #[test]
    fn for_each_covers_every_job() {
        let mut data = vec![0u32; 64];
        for_each(data.chunks_mut(16).enumerate(), |(idx, chunk)| {
            for v in chunk.iter_mut() {
                *v = idx as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 16 + 1);
        }
    }

    #[test]
    fn disjoint_partitions_pass() {
        // Exact tiling, a gap, and out-of-order ranges are all fine.
        debug_assert_disjoint("test", [(0, 16), (16, 16), (32, 16)]);
        debug_assert_disjoint("test", [(48, 8), (0, 16), (20, 4)]);
        debug_assert_disjoint("test", [(0, 0), (0, 4)]); // empty range
        debug_assert_disjoint("test", []);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overlapping parallel partition"))]
    fn overlapping_partition_trips_checker() {
        debug_assert_disjoint("test", [(0, 17), (16, 16)]);
    }

    #[test]
    fn runtime_override_caps_threads() {
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
