//! im2col / col2im primitives shared by convolution and transposed
//! convolution.

/// Output spatial size of a convolution: `⌊(in + 2·pad − k) / stride⌋ + 1`
/// (flooring, as deep-learning frameworks do).
///
/// # Panics
///
/// Panics when the kernel exceeds the padded input.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(padded >= kernel, "kernel {kernel} exceeds padded input {padded}");
    (padded - kernel) / stride + 1
}

/// Output spatial size of a transposed convolution:
/// `(in − 1)·stride − 2·pad + k`.
///
/// # Panics
///
/// Panics when the result would be non-positive.
pub fn deconv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let grown = (input - 1) * stride + kernel;
    assert!(grown > 2 * pad, "deconv geometry collapses: in={input} k={kernel} s={stride} p={pad}");
    grown - 2 * pad
}

/// Range of output positions `o` whose input tap `o·s + tap − p` lands
/// inside `[0, limit)`. Hoisting this out of the copy loops removes every
/// per-element padding branch in im2col/col2im.
#[inline]
fn tap_range(out: usize, limit: usize, tap: usize, s: usize, p: usize) -> (usize, usize) {
    let lo = if tap < p { (p - tap).div_ceil(s) } else { 0 };
    let hi = if limit + p > tap { ((limit + p - tap - 1) / s + 1).min(out) } else { 0 };
    (lo, hi.max(lo))
}

/// Allocating convenience wrapper over [`im2col_into`] (test-only; the
/// layers always reuse scratch).
#[cfg(test)]
pub fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) -> Vec<f32> {
    let mut cols = Vec::new();
    im2col_into(&mut cols, input, c, h, w, k, s, p);
    cols
}

/// Unfolds one `[C, H, W]` image into a `[(C·k·k) × (OH·OW)]` column matrix
/// for stride-`s`, zero-pad-`p` convolution with a `k × k` kernel. `cols` is
/// resized and overwritten, so a caller-owned scratch vector amortizes the
/// allocation across calls.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    cols: &mut Vec<f32>,
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) {
    debug_assert_eq!(input.len(), c * h * w);
    let oh = conv_out_size(h, k, s, p);
    let ow = conv_out_size(w, k, s, p);
    // clear + resize zero-fills even when the buffer is being reused, which
    // the padding positions (never written below) rely on.
    cols.clear();
    cols.resize(c * k * k * oh * ow, 0.0);
    let out_plane = oh * ow;
    for ci in 0..c {
        let img = &input[ci * h * w..(ci + 1) * h * w];
        for kh in 0..k {
            let (oy_lo, oy_hi) = tap_range(oh, h, kh, s, p);
            for kw in 0..k {
                let (ox_lo, ox_hi) = tap_range(ow, w, kw, s, p);
                let n = ox_hi - ox_lo;
                if n == 0 {
                    continue;
                }
                let row = ((ci * k + kh) * k + kw) * out_plane;
                for oy in oy_lo..oy_hi {
                    let src0 = (oy * s + kh - p) * w + ox_lo * s + kw - p;
                    let dst0 = row + oy * ow + ox_lo;
                    if s == 1 {
                        cols[dst0..dst0 + n].copy_from_slice(&img[src0..src0 + n]);
                    } else {
                        let src = img[src0..].iter().step_by(s);
                        for (d, &v) in cols[dst0..dst0 + n].iter_mut().zip(src) {
                            *d = v;
                        }
                    }
                }
            }
        }
    }
}

/// Allocating convenience wrapper over [`col2im_into`] (test-only; the
/// layers always reuse scratch).
#[cfg(test)]
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) -> Vec<f32> {
    let mut img = vec![0.0f32; c * h * w];
    col2im_into(&mut img, cols, c, h, w, k, s, p);
    img
}

/// Folds a `[(C·k·k) × (OH·OW)]` column matrix back into a caller-owned
/// `[C, H, W]` slice by scatter-add — the adjoint of [`im2col_into`]. The
/// slice is overwritten (not accumulated), which lets the conv layers fold
/// straight into an output tensor.
#[allow(clippy::too_many_arguments)]
pub fn col2im_into(
    img: &mut [f32],
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) {
    let oh = conv_out_size(h, k, s, p);
    let ow = conv_out_size(w, k, s, p);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    debug_assert_eq!(img.len(), c * h * w);
    img.fill(0.0);
    let out_plane = oh * ow;
    for ci in 0..c {
        let dst = &mut img[ci * h * w..(ci + 1) * h * w];
        for kh in 0..k {
            let (oy_lo, oy_hi) = tap_range(oh, h, kh, s, p);
            for kw in 0..k {
                let (ox_lo, ox_hi) = tap_range(ow, w, kw, s, p);
                let n = ox_hi - ox_lo;
                if n == 0 {
                    continue;
                }
                let row = ((ci * k + kh) * k + kw) * out_plane;
                for oy in oy_lo..oy_hi {
                    let dst0 = (oy * s + kh - p) * w + ox_lo * s + kw - p;
                    let src0 = row + oy * ow + ox_lo;
                    let src = &cols[src0..src0 + n];
                    if s == 1 {
                        for (d, &v) in dst[dst0..dst0 + n].iter_mut().zip(src) {
                            *d += v;
                        }
                    } else {
                        for (d, &v) in dst[dst0..].iter_mut().step_by(s).zip(src) {
                            *d += v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(conv_out_size(8, 3, 1, 1), 8);
        assert_eq!(conv_out_size(8, 3, 2, 1), 4); // floors (8+2-3)/2 + 1
        assert_eq!(conv_out_size(8, 4, 2, 1), 4); // exact
        assert_eq!(deconv_out_size(4, 3, 2, 1), 7);
        assert_eq!(deconv_out_size(4, 4, 2, 1), 8);
        assert_eq!(deconv_out_size(4, 2, 2, 0), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds padded input")]
    fn conv_size_rejects_oversized_kernel() {
        let _ = conv_out_size(2, 8, 1, 1);
    }

    #[test]
    fn im2col_identity_kernel() {
        // k=1, s=1, p=0 ⇒ cols equal the input.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let cols = im2col(&input, 2, 3, 3, 1, 1, 0);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_3x3_padded_center_tap() {
        // Single channel 2x2 image, k=3, s=1, p=1: the center tap row
        // (kh=1,kw=1) reproduces the image.
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&input, 1, 2, 2, 3, 1, 1);
        let plane = 4;
        let center = (3 + 1) * plane;
        assert_eq!(&cols[center..center + 4], &input[..]);
        // Top-left tap (kh=0,kw=0) sees zero padding except at (1,1) where
        // it reads input (0,0).
        assert_eq!(&cols[0..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for all x, y — the defining
        // property the conv backward pass relies on.
        let (c, h, w, k, s, p) = (2usize, 5, 4, 3, 1, 1);
        let oh = conv_out_size(h, k, s, p);
        let ow = conv_out_size(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        let y: Vec<f32> =
            (0..c * k * k * oh * ow).map(|i| ((i * 61 % 13) as f32) * 0.25 - 1.0).collect();
        let ax: Vec<f32> = im2col(&x, c, h, w, k, s, p);
        let aty: Vec<f32> = col2im(&y, c, h, w, k, s, p);
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_im2col_samples_every_other() {
        // 1 channel 4x4, k=2, s=2, p=0 → 2x2 outputs; tap (0,0) reads the
        // even-grid samples.
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let cols = im2col(&input, 1, 4, 4, 2, 2, 0);
        assert_eq!(&cols[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }
}
