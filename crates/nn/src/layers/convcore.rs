//! im2col / col2im primitives shared by convolution and transposed
//! convolution.

/// Output spatial size of a convolution: `⌊(in + 2·pad − k) / stride⌋ + 1`
/// (flooring, as deep-learning frameworks do).
///
/// # Panics
///
/// Panics when the kernel exceeds the padded input.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(padded >= kernel, "kernel {kernel} exceeds padded input {padded}");
    (padded - kernel) / stride + 1
}

/// Output spatial size of a transposed convolution:
/// `(in − 1)·stride − 2·pad + k`.
///
/// # Panics
///
/// Panics when the result would be non-positive.
pub fn deconv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let grown = (input - 1) * stride + kernel;
    assert!(grown > 2 * pad, "deconv geometry collapses: in={input} k={kernel} s={stride} p={pad}");
    grown - 2 * pad
}

/// Unfolds one `[C, H, W]` image into a `[(C·k·k) × (OH·OW)]` column matrix
/// for stride-`s`, zero-pad-`p` convolution with a `k × k` kernel.
pub fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) -> Vec<f32> {
    debug_assert_eq!(input.len(), c * h * w);
    let oh = conv_out_size(h, k, s, p);
    let ow = conv_out_size(w, k, s, p);
    let mut cols = vec![0.0f32; c * k * k * oh * ow];
    let out_plane = oh * ow;
    for ci in 0..c {
        let img = &input[ci * h * w..(ci + 1) * h * w];
        for kh in 0..k {
            for kw in 0..k {
                let row = ((ci * k + kh) * k + kw) * out_plane;
                for oy in 0..oh {
                    let iy = (oy * s + kh) as isize - p as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = iy as usize * w;
                    let dst_row = row + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * s + kw) as isize - p as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols[dst_row + ox] = img[src_row + ix as usize];
                    }
                }
            }
        }
    }
    cols
}

/// Folds a `[(C·k·k) × (OH·OW)]` column matrix back into a `[C, H, W]`
/// image by scatter-add — the adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) -> Vec<f32> {
    let oh = conv_out_size(h, k, s, p);
    let ow = conv_out_size(w, k, s, p);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    let mut img = vec![0.0f32; c * h * w];
    let out_plane = oh * ow;
    for ci in 0..c {
        let dst = &mut img[ci * h * w..(ci + 1) * h * w];
        for kh in 0..k {
            for kw in 0..k {
                let row = ((ci * k + kh) * k + kw) * out_plane;
                for oy in 0..oh {
                    let iy = (oy * s + kh) as isize - p as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = iy as usize * w;
                    let src_row = row + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * s + kw) as isize - p as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_row + ix as usize] += cols[src_row + ox];
                    }
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(conv_out_size(8, 3, 1, 1), 8);
        assert_eq!(conv_out_size(8, 3, 2, 1), 4); // floors (8+2-3)/2 + 1
        assert_eq!(conv_out_size(8, 4, 2, 1), 4); // exact
        assert_eq!(deconv_out_size(4, 3, 2, 1), 7);
        assert_eq!(deconv_out_size(4, 4, 2, 1), 8);
        assert_eq!(deconv_out_size(4, 2, 2, 0), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds padded input")]
    fn conv_size_rejects_oversized_kernel() {
        let _ = conv_out_size(2, 8, 1, 1);
    }

    #[test]
    fn im2col_identity_kernel() {
        // k=1, s=1, p=0 ⇒ cols equal the input.
        let input: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let cols = im2col(&input, 2, 3, 3, 1, 1, 0);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_3x3_padded_center_tap() {
        // Single channel 2x2 image, k=3, s=1, p=1: the center tap row
        // (kh=1,kw=1) reproduces the image.
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&input, 1, 2, 2, 3, 1, 1);
        let plane = 4;
        let center = ((1 * 3) + 1) * plane;
        assert_eq!(&cols[center..center + 4], &input[..]);
        // Top-left tap (kh=0,kw=0) sees zero padding except at (1,1) where
        // it reads input (0,0).
        assert_eq!(&cols[0..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for all x, y — the defining
        // property the conv backward pass relies on.
        let (c, h, w, k, s, p) = (2usize, 5, 4, 3, 1, 1);
        let oh = conv_out_size(h, k, s, p);
        let ow = conv_out_size(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        let y: Vec<f32> =
            (0..c * k * k * oh * ow).map(|i| ((i * 61 % 13) as f32) * 0.25 - 1.0).collect();
        let ax: Vec<f32> = im2col(&x, c, h, w, k, s, p);
        let aty: Vec<f32> = col2im(&y, c, h, w, k, s, p);
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_im2col_samples_every_other() {
        // 1 channel 4x4, k=2, s=2, p=0 → 2x2 outputs; tap (0,0) reads the
        // even-grid samples.
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let cols = im2col(&input, 1, 4, 4, 2, 2, 0);
        assert_eq!(&cols[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }
}
