//! Element-wise activations.

use super::{Layer, Param};
use crate::Tensor;

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, cache_output: $cache_out:expr,
     fwd: $fwd:expr, bwd: $bwd:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            cache: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation.
            pub fn new() -> Self {
                Self { cache: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
                let fwd: fn(f32) -> f32 = $fwd;
                let out = input.map(fwd);
                self.cache = Some(if $cache_out { out.clone() } else { input.clone() });
                out
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let cached = self.cache.as_ref().expect("backward before forward");
                assert_eq!(cached.shape(), grad_out.shape(), "activation grad shape mismatch");
                let bwd: fn(f32) -> f32 = $bwd;
                let data = cached
                    .as_slice()
                    .iter()
                    .zip(grad_out.as_slice())
                    .map(|(&c, &g)| g * bwd(c))
                    .collect();
                Tensor::from_vec(grad_out.shape(), data)
            }

            fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

            fn describe(&self) -> String {
                stringify!($name).to_string()
            }
        }
    };
}

activation_layer!(
    /// Rectified linear unit `max(0, x)`.
    Relu,
    cache_output: false,
    fwd: |x| if x > 0.0 { x } else { 0.0 },
    bwd: |x| if x > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Logistic sigmoid `1/(1+e^{-x})` — output nonlinearity of both the
    /// generator (mask pixels) and the discriminator (probability).
    Sigmoid,
    cache_output: true,
    fwd: |x| 1.0 / (1.0 + (-x).exp()),
    bwd: |y| y * (1.0 - y)
);

activation_layer!(
    /// Hyperbolic tangent.
    Tanh,
    cache_output: true,
    fwd: |x| x.tanh(),
    bwd: |y| 1.0 - y * y
);

/// Leaky ReLU with configurable negative slope (GAN discriminators
/// conventionally use 0.2).
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    cache: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU; `slope` is the gradient for negative inputs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= slope < 1`.
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope {slope} out of [0,1)");
        LeakyRelu { slope, cache: None }
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        LeakyRelu::new(0.2)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = self.slope;
        let out = input.map(|x| if x > 0.0 { x } else { s * x });
        self.cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cache.as_ref().expect("backward before forward");
        let s = self.slope;
        let data = input
            .as_slice()
            .iter()
            .zip(grad_out.as_slice())
            .map(|(&x, &g)| if x > 0.0 { g } else { s * g })
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn describe(&self) -> String {
        format!("LeakyRelu({})", self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use crate::init;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(&[4], vec![-1.0, 0.0, 0.5, 2.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(&[3], vec![-10.0, 0.0, 10.0]), true);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn tanh_is_odd() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(&[2], vec![-1.3, 1.3]), true);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn leaky_scales_negative_side() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_vec(&[2], vec![-2.0, 2.0]), true);
        assert_eq!(y.as_slice(), &[-0.2, 2.0]);
    }

    #[test]
    fn all_gradients_check_out() {
        // Probe away from the ReLU kink (uniform over ±1 rarely lands on 0).
        let x = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, 20);
        gradcheck::check_input_gradient(&mut Relu::new(), &x, 0.05);
        gradcheck::check_input_gradient(&mut Sigmoid::new(), &x, 0.02);
        gradcheck::check_input_gradient(&mut Tanh::new(), &x, 0.02);
        gradcheck::check_input_gradient(&mut LeakyRelu::new(0.2), &x, 0.05);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn leaky_rejects_bad_slope() {
        let _ = LeakyRelu::new(1.5);
    }
}
