//! Element-wise activations.
//!
//! Every activation here caches its **output** in a persistent buffer and
//! derives the backward pass from it: sigmoid/tanh have closed-form
//! derivatives in the output, and the (leaky) ReLU derivative only needs
//! the sign of the input, which the output preserves. Caching the output
//! is what makes the in-place fast path possible — the input no longer
//! exists once the buffer has been transformed.

use super::{Layer, Param};
use crate::Tensor;

/// Copies the freshly computed activation output into the persistent cache,
/// reusing its capacity after the first call.
fn cache_output(cache: &mut Option<Tensor>, out: &Tensor) {
    match cache {
        Some(c) => c.copy_from(out),
        None => *cache = Some(out.clone()),
    }
}

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, fwd: $fwd:expr, bwd_from_out: $bwd:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            cache: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation.
            pub fn new() -> Self {
                Self { cache: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                let mut out = Tensor::zeros(input.shape());
                self.forward_into(input, &mut out, train);
                out
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let mut grad_in = Tensor::zeros(grad_out.shape());
                self.backward_into(grad_out, Some(&mut grad_in));
                grad_in
            }

            // lint: hot-path
            fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
                let fwd: fn(f32) -> f32 = $fwd;
                out.resize(input.shape());
                for (d, &s) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                    *d = fwd(s);
                }
                cache_output(&mut self.cache, out);
            }

            // lint: hot-path
            fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
                // PANIC: Layer contract — backward runs only after forward cached state.
                let cached = self.cache.as_ref().expect("backward before forward");
                assert_eq!(cached.shape(), grad_out.shape(), "activation grad shape mismatch");
                let bwd: fn(f32) -> f32 = $bwd;
                if let Some(gi) = grad_in {
                    gi.resize(grad_out.shape());
                    for ((d, &c), &g) in gi
                        .as_mut_slice()
                        .iter_mut()
                        .zip(cached.as_slice())
                        .zip(grad_out.as_slice())
                    {
                        *d = g * bwd(c);
                    }
                }
            }

            // lint: hot-path
            fn forward_inplace(&mut self, x: &mut Tensor, _train: bool) -> bool {
                let fwd: fn(f32) -> f32 = $fwd;
                for v in x.as_mut_slice() {
                    *v = fwd(*v);
                }
                cache_output(&mut self.cache, x);
                true
            }

            // lint: hot-path
            fn backward_inplace(&mut self, g: &mut Tensor) -> bool {
                // PANIC: Layer contract — backward runs only after forward cached state.
                let cached = self.cache.as_ref().expect("backward before forward");
                assert_eq!(cached.shape(), g.shape(), "activation grad shape mismatch");
                let bwd: fn(f32) -> f32 = $bwd;
                for (gv, &c) in g.as_mut_slice().iter_mut().zip(cached.as_slice()) {
                    *gv *= bwd(c);
                }
                true
            }

            fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

            fn describe(&self) -> String {
                stringify!($name).to_string()
            }
        }
    };
}

activation_layer!(
    /// Rectified linear unit `max(0, x)`.
    Relu,
    fwd: |x| if x > 0.0 { x } else { 0.0 },
    // The output preserves the input's positivity, so the derivative can be
    // read off the cached output: y > 0 ⟺ x > 0.
    bwd_from_out: |y| if y > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Logistic sigmoid `1/(1+e^{-x})` — output nonlinearity of both the
    /// generator (mask pixels) and the discriminator (probability).
    Sigmoid,
    fwd: |x| 1.0 / (1.0 + (-x).exp()),
    bwd_from_out: |y| y * (1.0 - y)
);

activation_layer!(
    /// Hyperbolic tangent.
    Tanh,
    fwd: |x| x.tanh(),
    bwd_from_out: |y| 1.0 - y * y
);

/// Leaky ReLU with configurable negative slope (GAN discriminators
/// conventionally use 0.2).
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    cache: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU; `slope` is the gradient for negative inputs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= slope < 1`.
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope {slope} out of [0,1)");
        LeakyRelu { slope, cache: None }
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        LeakyRelu::new(0.2)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(input.shape());
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(grad_out.shape());
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let s = self.slope;
        out.resize(input.shape());
        for (d, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *d = if x > 0.0 { x } else { s * x };
        }
        cache_output(&mut self.cache, out);
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // Scaling by a slope in [0, 1) preserves the sign of negative
        // inputs (and maps them to ±0 for slope 0), so `y > 0 ⟺ x > 0`
        // and the cached output decides the branch exactly as the input
        // would have.
        // PANIC: Layer contract — backward runs only after forward cached state.
        let cached = self.cache.as_ref().expect("backward before forward");
        assert_eq!(cached.shape(), grad_out.shape(), "activation grad shape mismatch");
        let s = self.slope;
        if let Some(gi) = grad_in {
            gi.resize(grad_out.shape());
            for ((d, &y), &g) in
                gi.as_mut_slice().iter_mut().zip(cached.as_slice()).zip(grad_out.as_slice())
            {
                *d = if y > 0.0 { g } else { s * g };
            }
        }
    }

    // lint: hot-path
    fn forward_inplace(&mut self, x: &mut Tensor, _train: bool) -> bool {
        let s = self.slope;
        for v in x.as_mut_slice() {
            if *v <= 0.0 {
                *v *= s;
            }
        }
        cache_output(&mut self.cache, x);
        true
    }

    // lint: hot-path
    fn backward_inplace(&mut self, g: &mut Tensor) -> bool {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let cached = self.cache.as_ref().expect("backward before forward");
        assert_eq!(cached.shape(), g.shape(), "activation grad shape mismatch");
        let s = self.slope;
        for (gv, &y) in g.as_mut_slice().iter_mut().zip(cached.as_slice()) {
            if y <= 0.0 {
                *gv *= s;
            }
        }
        true
    }

    fn describe(&self) -> String {
        format!("LeakyRelu({})", self.slope)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use crate::init;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(&[4], vec![-1.0, 0.0, 0.5, 2.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(&[3], vec![-10.0, 0.0, 10.0]), true);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn tanh_is_odd() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(&[2], vec![-1.3, 1.3]), true);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn leaky_scales_negative_side() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_vec(&[2], vec![-2.0, 2.0]), true);
        assert_eq!(y.as_slice(), &[-0.2, 2.0]);
    }

    #[test]
    fn all_gradients_check_out() {
        // Probe away from the ReLU kink (uniform over ±1 rarely lands on 0).
        let x = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, 20);
        gradcheck::check_input_gradient(&mut Relu::new(), &x, 0.05);
        gradcheck::check_input_gradient(&mut Sigmoid::new(), &x, 0.02);
        gradcheck::check_input_gradient(&mut Tanh::new(), &x, 0.02);
        gradcheck::check_input_gradient(&mut LeakyRelu::new(0.2), &x, 0.05);
    }

    #[test]
    fn inplace_paths_match_allocating_paths() {
        let x = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, 21);
        let g = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, 22);
        let mut a = LeakyRelu::new(0.2);
        let mut b = LeakyRelu::new(0.2);
        let y = a.forward(&x, true);
        let gi = a.backward(&g);
        let mut buf = x.clone();
        assert!(b.forward_inplace(&mut buf, true));
        assert_eq!(buf, y);
        let mut gbuf = g.clone();
        assert!(b.backward_inplace(&mut gbuf));
        assert_eq!(gbuf, gi);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn leaky_rejects_bad_slope() {
        let _ = LeakyRelu::new(1.5);
    }
}
