//! Dropout regularization.

use super::{Layer, Param};
use crate::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation
/// mode is a pass-through. The mask sequence is deterministic in the seed
/// (xorshift), keeping training runs reproducible.
///
/// ```
/// use ganopc_nn::{layers::{Dropout, Layer}, Tensor};
/// let mut d = Dropout::new(0.5, 1);
/// let x = Tensor::filled(&[1, 64], 1.0);
/// let eval = d.forward(&x, false);
/// assert_eq!(eval, x); // inference is identity
/// ```
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    state: u64,
    /// Persistent mask buffer, reused across steps; only meaningful while
    /// `mask_active` is set (training forward with `p > 0`).
    mask: Vec<f32>,
    mask_active: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability {p} out of [0,1)");
        Dropout { p, state: seed | 1, mask: Vec::new(), mask_active: false }
    }

    /// Regenerates the persistent mask for `len` activations (one RNG draw
    /// per element, same sequence as always).
    fn fill_mask(&mut self, len: usize) {
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask.clear();
        self.mask.reserve(len);
        for _ in 0..len {
            let m = if self.next_uniform() < self.p { 0.0 } else { scale };
            self.mask.push(m);
        }
        self.mask_active = true;
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    fn next_uniform(&mut self) -> f32 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D)) >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        if !train || self.p == 0.0 {
            self.mask_active = false;
            out.copy_from(input);
            return;
        }
        self.fill_mask(input.len());
        out.resize(input.shape());
        for ((d, &v), &m) in out.as_mut_slice().iter_mut().zip(input.as_slice()).zip(&self.mask) {
            *d = v * m;
        }
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        let Some(gi) = grad_in else { return };
        if !self.mask_active {
            gi.copy_from(grad_out);
            return;
        }
        assert_eq!(self.mask.len(), grad_out.len(), "dropout grad shape mismatch");
        gi.resize(grad_out.shape());
        for ((d, &g), &m) in gi.as_mut_slice().iter_mut().zip(grad_out.as_slice()).zip(&self.mask) {
            *d = g * m;
        }
    }

    // lint: hot-path
    fn forward_inplace(&mut self, x: &mut Tensor, train: bool) -> bool {
        if !train || self.p == 0.0 {
            self.mask_active = false;
            return true;
        }
        self.fill_mask(x.len());
        for (v, &m) in x.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        true
    }

    // lint: hot-path
    fn backward_inplace(&mut self, g: &mut Tensor) -> bool {
        if !self.mask_active {
            return true;
        }
        assert_eq!(self.mask.len(), g.len(), "dropout grad shape mismatch");
        for (v, &m) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        true
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("Dropout({})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.7, 3);
        let x = crate::init::uniform(&[2, 8], -1.0, 1.0, 1);
        assert_eq!(d.forward(&x, false), x);
        // Backward after eval forward passes gradients through unchanged.
        let g = Tensor::filled(&[2, 8], 2.0);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn training_drops_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::filled(&[1, 10_000], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "dropped fraction {frac}");
        // Survivors are scaled by 1/keep.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved.
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::filled(&[1, 64], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::filled(&[1, 64], 1.0));
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0, "mask mismatch between fwd and bwd");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = crate::init::uniform(&[4, 4], -1.0, 1.0, 8);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn rejects_certain_drop() {
        let _ = Dropout::new(1.0, 0);
    }
}
