//! 2-D convolution and transposed convolution.
//!
//! Both layers lower to GEMM via im2col/col2im per batch sample; the
//! per-sample work is independent, so forward and backward fan the samples
//! out over [`crate::pool`]. Weight and bias gradients land in per-sample
//! scratch vectors owned by the layer and are reduced sequentially in
//! sample order, which keeps training bit-identical across thread counts.
//! Column matrices and gradient partials all live in layer-owned scratch
//! reused across steps, so the `_into` entry points perform no steady-state
//! heap allocation.

use super::{col2im_into, conv_out_size, deconv_out_size, im2col_into, Layer, Param};
use crate::gemm::{matmul_into, matmul_nt_into, matmul_tn_into};
use crate::{init, pool, Tensor};

/// Grows `bufs` to one scratch vector per batch sample, preserving already
/// allocated capacity.
fn per_sample_scratch(bufs: &mut Vec<Vec<f32>>, n: usize) {
    if bufs.len() < n {
        bufs.resize_with(n, Vec::new);
    }
}

/// Sizes a scratch vector to exactly `len` elements, reusing its capacity.
/// Contents are unspecified — every caller overwrites the buffer (the GEMM
/// `_into` kernels zero-fill their destination themselves).
fn fit(buf: &mut Vec<f32>, len: usize) {
    buf.resize(len, 0.0);
}

/// 2-D convolution over `[N, C, H, W]` tensors.
///
/// Weight layout is `[out_ch, in_ch, k, k]`; He-normal initialized from the
/// given seed; bias starts at zero. Stride/padding follow the usual
/// deep-learning (flooring) conventions.
///
/// ```
/// use ganopc_nn::{layers::{Conv2d, Layer}, Tensor};
/// let mut conv = Conv2d::new(3, 8, 4, 2, 1, 42); // halves H and W
/// let y = conv.forward(&Tensor::zeros(&[1, 3, 16, 16]), true);
/// assert_eq!(y.shape(), &[1, 8, 8, 8]);
/// ```
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    /// Cached per-batch-item column matrices from the last forward (reused
    /// as scratch across steps).
    cache_cols: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the backward column gradients.
    scratch_dcols: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the weight-gradient partials.
    scratch_dw: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the bias-gradient partials.
    scratch_db: Vec<Vec<f32>>,
    cache_in_shape: Option<(usize, usize, usize, usize)>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics on zero channels, kernel or stride.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0, "degenerate conv geometry");
        Conv2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            weight: Param::new(init::he_normal(&[out_ch, in_ch, k, k], seed)),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cache_cols: Vec::new(),
            scratch_dcols: Vec::new(),
            scratch_dw: Vec::new(),
            scratch_db: Vec::new(),
            cache_in_shape: None,
        }
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, n: usize, h: usize, w: usize) -> [usize; 4] {
        [
            n,
            self.out_ch,
            conv_out_size(h, self.k, self.stride, self.pad),
            conv_out_size(w, self.k, self.stride, self.pad),
        ]
    }

    /// Adds each per-sample weight/bias partial into the parameter
    /// gradients, in sample order (thread-count-independent bits).
    fn reduce_partials(&mut self, n: usize) {
        for (dw, db) in self.scratch_dw.iter().take(n).zip(self.scratch_db.iter().take(n)) {
            for (g, d) in self.weight.grad.as_mut_slice().iter_mut().zip(dw) {
                *g += d;
            }
            for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db) {
                *g += d;
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let (n, c, h, w) = input.dims4();
        assert_eq!(c, self.in_ch, "Conv2d expects {} input channels, got {c}", self.in_ch);
        let oh = conv_out_size(h, self.k, self.stride, self.pad);
        let ow = conv_out_size(w, self.k, self.stride, self.pad);
        let ckk = self.in_ch * self.k * self.k;
        let plane = oh * ow;
        let (k, stride, pad, out_ch) = (self.k, self.stride, self.pad, self.out_ch);
        out.resize(&[n, out_ch, oh, ow]);
        per_sample_scratch(&mut self.cache_cols, n);
        let weight = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();
        let input_data = input.as_slice();
        let cols_v = pool::DisjointMut::new(&mut self.cache_cols[..n]);
        let out_v = pool::DisjointMut::new(out.as_mut_slice());
        pool::run_chunks(n, |samples| {
            for ni in samples {
                // SAFETY: run_chunks sample ranges partition 0..n, so this
                // chunk exclusively owns sample ni's scratch and output plane.
                let (cols, dst) = unsafe {
                    (
                        cols_v.index_mut(ni),
                        out_v.slice_mut(ni * out_ch * plane..(ni + 1) * out_ch * plane),
                    )
                };
                let img = &input_data[ni * c * h * w..][..c * h * w];
                im2col_into(cols, img, c, h, w, k, stride, pad);
                matmul_into(dst, weight, cols, out_ch, ckk, plane);
                for (drow, &b) in dst.chunks_mut(plane).zip(bias) {
                    for v in drow {
                        *v += b;
                    }
                }
            }
        });
        self.cache_in_shape = Some((n, c, h, w));
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let (n, c, h, w) = self.cache_in_shape.expect("backward before forward");
        let (gn, gc, oh, ow) = grad_out.dims4();
        assert_eq!((gn, gc), (n, self.out_ch), "grad_out batch/channel mismatch");
        let ckk = self.in_ch * self.k * self.k;
        let plane = oh * ow;
        let (k, stride, pad, out_ch) = (self.k, self.stride, self.pad, self.out_ch);
        per_sample_scratch(&mut self.scratch_dw, n);
        per_sample_scratch(&mut self.scratch_db, n);
        let weight = self.weight.value.as_slice();
        let grad_out_data = grad_out.as_slice();
        let cache_cols = &self.cache_cols;
        // dW_ni = gO · colsᵀ ; cols is [ckk × plane], gO is [oc × plane];
        // db_ni = Σ_spatial gO. Partials land in per-sample scratch.
        let sample_params = |ni: usize, dw: &mut Vec<f32>, db: &mut Vec<f32>| {
            let go = &grad_out_data[ni * out_ch * plane..][..out_ch * plane];
            let cols = &cache_cols[ni];
            fit(dw, out_ch * ckk);
            matmul_nt_into(dw, go, cols, out_ch, plane, ckk);
            db.clear();
            db.extend(go.chunks_exact(plane).map(|row| row.iter().sum::<f32>()));
        };
        let dw_v = pool::DisjointMut::new(&mut self.scratch_dw[..n]);
        let db_v = pool::DisjointMut::new(&mut self.scratch_db[..n]);
        match grad_in {
            Some(gi_t) => {
                gi_t.resize(&[n, c, h, w]);
                per_sample_scratch(&mut self.scratch_dcols, n);
                let dcols_v = pool::DisjointMut::new(&mut self.scratch_dcols[..n]);
                let gi_v = pool::DisjointMut::new(gi_t.as_mut_slice());
                let plane_in = c * h * w;
                pool::run_chunks(n, |samples| {
                    for ni in samples {
                        // SAFETY: run_chunks sample ranges partition 0..n, so
                        // this chunk exclusively owns sample ni's scratch
                        // slots and grad_in plane.
                        let (dcols, dw, db, gi) = unsafe {
                            (
                                dcols_v.index_mut(ni),
                                dw_v.index_mut(ni),
                                db_v.index_mut(ni),
                                gi_v.slice_mut(ni * plane_in..(ni + 1) * plane_in),
                            )
                        };
                        sample_params(ni, dw, db);
                        // d cols = Wᵀ · gO; W stored [oc × ckk]; fold back onto
                        // the input grid directly in this sample's grad_in slice.
                        let go = &grad_out_data[ni * out_ch * plane..][..out_ch * plane];
                        fit(dcols, ckk * plane);
                        matmul_tn_into(dcols, weight, go, ckk, out_ch, plane);
                        col2im_into(gi, dcols, c, h, w, k, stride, pad);
                    }
                });
            }
            // Discard path (first layer): parameter gradients only.
            None => {
                pool::run_chunks(n, |samples| {
                    for ni in samples {
                        // SAFETY: run_chunks sample ranges partition 0..n, so
                        // this chunk exclusively owns sample ni's scratch slots.
                        let (dw, db) = unsafe { (dw_v.index_mut(ni), db_v.index_mut(ni)) };
                        sample_params(ni, dw, db);
                    }
                });
            }
        }
        self.reduce_partials(n);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}→{}, k={}, s={}, p={})",
            self.in_ch, self.out_ch, self.k, self.stride, self.pad
        )
    }
}

/// 2-D transposed convolution ("deconvolution", the decoder upsampling
/// operation of Fig. 3/4 in the paper).
///
/// Weight layout is `[in_ch, out_ch, k, k]` (mirroring the usual
/// transposed-conv convention); output size is `(in−1)·s − 2p + k`.
///
/// ```
/// use ganopc_nn::{layers::{ConvTranspose2d, Layer}, Tensor};
/// let mut up = ConvTranspose2d::new(8, 4, 4, 2, 1, 7); // doubles H and W
/// let y = up.forward(&Tensor::zeros(&[1, 8, 8, 8]), true);
/// assert_eq!(y.shape(), &[1, 4, 16, 16]);
/// ```
pub struct ConvTranspose2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    /// Persistent copy of the last forward input (reused across steps).
    cache_input: Option<Tensor>,
    /// Per-batch-item scratch for the forward column matrices.
    scratch_cols: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the backward column gradients.
    scratch_gcols: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the weight-gradient partials.
    scratch_dw: Vec<Vec<f32>>,
    /// Per-batch-item scratch for the bias-gradient partials.
    scratch_db: Vec<Vec<f32>>,
}

impl ConvTranspose2d {
    /// Creates a transposed-convolution layer.
    ///
    /// # Panics
    ///
    /// Panics on zero channels, kernel or stride.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0, "degenerate deconv geometry");
        ConvTranspose2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            weight: Param::new(init::he_normal(&[in_ch, out_ch, k, k], seed)),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cache_input: None,
            scratch_cols: Vec::new(),
            scratch_gcols: Vec::new(),
            scratch_dw: Vec::new(),
            scratch_db: Vec::new(),
        }
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, n: usize, h: usize, w: usize) -> [usize; 4] {
        [
            n,
            self.out_ch,
            deconv_out_size(h, self.k, self.stride, self.pad),
            deconv_out_size(w, self.k, self.stride, self.pad),
        ]
    }

    /// Adds each per-sample weight/bias partial into the parameter
    /// gradients, in sample order (thread-count-independent bits).
    fn reduce_partials(&mut self, n: usize) {
        for (dw, db) in self.scratch_dw.iter().take(n).zip(self.scratch_db.iter().take(n)) {
            for (g, d) in self.weight.grad.as_mut_slice().iter_mut().zip(dw) {
                *g += d;
            }
            for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db) {
                *g += d;
            }
        }
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let (n, c, ih, iw) = input.dims4();
        assert_eq!(c, self.in_ch, "ConvTranspose2d expects {} channels, got {c}", self.in_ch);
        let oh = deconv_out_size(ih, self.k, self.stride, self.pad);
        let ow = deconv_out_size(iw, self.k, self.stride, self.pad);
        let okk = self.out_ch * self.k * self.k;
        let in_plane = ih * iw;
        let out_plane = oh * ow;
        let (k, stride, pad, in_ch, out_ch) =
            (self.k, self.stride, self.pad, self.in_ch, self.out_ch);
        out.resize(&[n, out_ch, oh, ow]);
        per_sample_scratch(&mut self.scratch_cols, n);
        let weight = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();
        let input_data = input.as_slice();
        let cols_v = pool::DisjointMut::new(&mut self.scratch_cols[..n]);
        let out_v = pool::DisjointMut::new(out.as_mut_slice());
        pool::run_chunks(n, |samples| {
            for ni in samples {
                // SAFETY: run_chunks sample ranges partition 0..n, so this
                // chunk exclusively owns sample ni's scratch and output plane.
                let (cols, dst) = unsafe {
                    (
                        cols_v.index_mut(ni),
                        out_v.slice_mut(ni * out_ch * out_plane..(ni + 1) * out_ch * out_plane),
                    )
                };
                let x = &input_data[ni * c * in_plane..][..c * in_plane];
                // cols [okk × in_plane] = Wᵀ · x, with W stored [in_ch × okk].
                fit(cols, okk * in_plane);
                matmul_tn_into(cols, weight, x, okk, in_ch, in_plane);
                // Scatter back onto the (larger) output grid: transposed conv
                // is the adjoint of a conv from [oh×ow] down to [ih×iw].
                col2im_into(dst, cols, out_ch, oh, ow, k, stride, pad);
                for (drow, &b) in dst.chunks_mut(out_plane).zip(bias) {
                    for v in drow {
                        *v += b;
                    }
                }
            }
        });
        match &mut self.cache_input {
            Some(t) => t.copy_from(input),
            // ALLOC: one-time cache init on the first forward; later
            // steps reuse the buffer via copy_from.
            None => self.cache_input = Some(input.clone()),
        }
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let input = self.cache_input.as_ref().expect("backward before forward");
        let (n, c, ih, iw) = input.dims4();
        let (_gn, _gc, oh, ow) = grad_out.dims4();
        let okk = self.out_ch * self.k * self.k;
        let in_plane = ih * iw;
        let out_plane = oh * ow;
        let (k, stride, pad, in_ch, out_ch) =
            (self.k, self.stride, self.pad, self.in_ch, self.out_ch);
        per_sample_scratch(&mut self.scratch_gcols, n);
        per_sample_scratch(&mut self.scratch_dw, n);
        per_sample_scratch(&mut self.scratch_db, n);
        let weight = self.weight.value.as_slice();
        let grad_out_data = grad_out.as_slice();
        let input_data = input.as_slice();
        // Adjoint of the forward scatter: gather with im2col, then
        // dW_ni [in_ch × okk] = x · gcolsᵀ and db_ni = Σ_spatial gO. The
        // column gradients are needed for dW even on the discard path.
        let sample_params =
            |ni: usize, gcols: &mut Vec<f32>, dw: &mut Vec<f32>, db: &mut Vec<f32>| {
                let go = &grad_out_data[ni * out_ch * out_plane..][..out_ch * out_plane];
                im2col_into(gcols, go, out_ch, oh, ow, k, stride, pad);
                debug_assert_eq!(gcols.len(), okk * in_plane);
                let x = &input_data[ni * c * in_plane..][..c * in_plane];
                fit(dw, in_ch * okk);
                matmul_nt_into(dw, x, gcols, in_ch, in_plane, okk);
                db.clear();
                db.extend(go.chunks_exact(out_plane).map(|row| row.iter().sum::<f32>()));
            };
        let gcols_v = pool::DisjointMut::new(&mut self.scratch_gcols[..n]);
        let dw_v = pool::DisjointMut::new(&mut self.scratch_dw[..n]);
        let db_v = pool::DisjointMut::new(&mut self.scratch_db[..n]);
        match grad_in {
            Some(gi_t) => {
                gi_t.resize(&[n, c, ih, iw]);
                let gi_v = pool::DisjointMut::new(gi_t.as_mut_slice());
                pool::run_chunks(n, |samples| {
                    for ni in samples {
                        // SAFETY: run_chunks sample ranges partition 0..n, so
                        // this chunk exclusively owns sample ni's scratch
                        // slots and grad_in plane.
                        let (gcols, dw, db, gi) = unsafe {
                            (
                                gcols_v.index_mut(ni),
                                dw_v.index_mut(ni),
                                db_v.index_mut(ni),
                                gi_v.slice_mut(ni * c * in_plane..(ni + 1) * c * in_plane),
                            )
                        };
                        sample_params(ni, gcols, dw, db);
                        // grad_in [in_ch × in_plane] = W · gcols.
                        matmul_into(gi, weight, gcols, in_ch, okk, in_plane);
                    }
                });
            }
            // Discard path (first layer): parameter gradients only.
            None => {
                pool::run_chunks(n, |samples| {
                    for ni in samples {
                        // SAFETY: run_chunks sample ranges partition 0..n, so
                        // this chunk exclusively owns sample ni's scratch slots.
                        let (gcols, dw, db) = unsafe {
                            (gcols_v.index_mut(ni), dw_v.index_mut(ni), db_v.index_mut(ni))
                        };
                        sample_params(ni, gcols, dw, db);
                    }
                });
            }
        }
        self.reduce_partials(n);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!(
            "ConvTranspose2d({}→{}, k={}, s={}, p={})",
            self.in_ch, self.out_ch, self.k, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;

    #[test]
    fn conv_identity_kernel_passthrough() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.weight.value = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let x = init::uniform(&[1, 1, 4, 4], -1.0, 1.0, 3);
        let y = conv.forward(&x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_known_3x3_sum_kernel() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        conv.weight.value = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let x = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let y = conv.forward(&x, true);
        // Center pixel sums 9 ones; corners see only 4.
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0);
    }

    #[test]
    fn conv_bias_applied_per_channel() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, 1);
        conv.weight.value = Tensor::from_vec(&[2, 1, 1, 1], vec![0.0, 0.0]);
        conv.bias.value = Tensor::from_vec(&[2], vec![1.5, -2.0]);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), true);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.5);
        assert_eq!(y.at(&[0, 1, 0, 0]), -2.0);
    }

    #[test]
    fn conv_gradients_check_out() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 5);
        let x = init::uniform(&[2, 2, 5, 5], -1.0, 1.0, 8);
        gradcheck::check_input_gradient(&mut conv, &x, 0.03);
        gradcheck::check_param_gradients(&mut conv, &x, 0.03);
    }

    #[test]
    fn strided_conv_gradients_check_out() {
        let mut conv = Conv2d::new(1, 2, 4, 2, 1, 6);
        let x = init::uniform(&[1, 1, 8, 8], -1.0, 1.0, 9);
        gradcheck::check_input_gradient(&mut conv, &x, 0.03);
        gradcheck::check_param_gradients(&mut conv, &x, 0.03);
    }

    #[test]
    fn deconv_upsamples_shape() {
        let mut up = ConvTranspose2d::new(2, 1, 4, 2, 1, 3);
        let x = Tensor::zeros(&[2, 2, 4, 4]);
        let y = up.forward(&x, true);
        assert_eq!(y.shape(), &[2, 1, 8, 8]);
    }

    #[test]
    fn deconv_gradients_check_out() {
        let mut up = ConvTranspose2d::new(2, 2, 4, 2, 1, 4);
        let x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, 10);
        gradcheck::check_input_gradient(&mut up, &x, 0.03);
        gradcheck::check_param_gradients(&mut up, &x, 0.03);
    }

    #[test]
    fn deconv_is_adjoint_of_conv() {
        // With shared weights, ⟨conv(x), y⟩ == ⟨x, deconv(y)⟩ when deconv's
        // [in,out] axes mirror conv's [out,in] — the defining relationship.
        let k = 3;
        let (s, p) = (1usize, 1usize);
        let mut conv = Conv2d::new(1, 1, k, s, p, 11);
        let mut deconv = ConvTranspose2d::new(1, 1, k, s, p, 12);
        deconv.weight.value = conv.weight.value.clone().reshape(&[1, 1, k, k]);
        deconv.bias.value = Tensor::zeros(&[1]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = init::uniform(&[1, 1, 6, 6], -1.0, 1.0, 13);
        let y = init::uniform(&[1, 1, 6, 6], -1.0, 1.0, 14);
        let cx = conv.forward(&x, true);
        let dy = deconv.forward(&y, true);
        let lhs: f64 =
            cx.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 =
            x.as_slice().iter().zip(dy.as_slice()).map(|(&a, &b)| a as f64 * b as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn discard_path_matches_param_grads() {
        // backward_into(None) must accumulate exactly the gradients the
        // full backward produces, just without the input gradient.
        let x = init::uniform(&[2, 2, 6, 6], -1.0, 1.0, 15);
        let mut a = Conv2d::new(2, 3, 3, 1, 1, 16);
        let mut b = Conv2d::new(2, 3, 3, 1, 1, 16);
        let ya = a.forward(&x, true);
        let _ = b.forward(&x, true);
        let g = init::uniform(ya.shape(), -1.0, 1.0, 17);
        let _ = a.backward(&g);
        b.backward_into(&g, None);
        assert_eq!(a.weight.grad, b.weight.grad);
        assert_eq!(a.bias.grad, b.bias.grad);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn conv_backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        let _ = conv.backward(&Tensor::zeros(&[1, 1, 4, 4]));
    }

    #[test]
    fn output_shape_helpers() {
        let conv = Conv2d::new(3, 16, 4, 2, 1, 0);
        assert_eq!(conv.output_shape(2, 32, 32), [2, 16, 16, 16]);
        let up = ConvTranspose2d::new(16, 3, 4, 2, 1, 0);
        assert_eq!(up.output_shape(2, 16, 16), [2, 3, 32, 32]);
    }
}
