//! Spatial pooling layers.

use super::{conv_out_size, Layer, Param};
use crate::Tensor;

/// Average pooling over `[N, C, H, W]` tensors with square windows.
///
/// The paper's preprocessing applies 8×8 average pooling to 2048-px clips
/// before the networks; inside a network this layer provides the same
/// operation differentiably.
///
/// ```
/// use ganopc_nn::{layers::{AvgPool2d, Layer}, Tensor};
/// let mut pool = AvgPool2d::new(2);
/// let y = pool.forward(&Tensor::filled(&[1, 1, 4, 4], 3.0), true);
/// assert_eq!(y.shape(), &[1, 1, 2, 2]);
/// assert!(y.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-6));
/// ```
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    cache_in_shape: Option<(usize, usize, usize, usize)>,
}

impl AvgPool2d {
    /// Creates a non-overlapping `k × k` average pool (stride = k).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        AvgPool2d { k, cache_in_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let (n, c, h, w) = input.dims4();
        let oh = conv_out_size(h, self.k, self.k, 0);
        let ow = conv_out_size(w, self.k, self.k, 0);
        let norm = 1.0 / (self.k * self.k) as f32;
        out.resize(&[n, c, oh, ow]);
        for ni in 0..n {
            for ci in 0..c {
                let src = &input.as_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let dst_base = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..self.k {
                            let row = (oy * self.k + dy) * w + ox * self.k;
                            for dx in 0..self.k {
                                acc += src[row + dx];
                            }
                        }
                        out.as_mut_slice()[dst_base + oy * ow + ox] = acc * norm;
                    }
                }
            }
        }
        self.cache_in_shape = Some((n, c, h, w));
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let (n, c, h, w) = self.cache_in_shape.expect("backward before forward");
        // No parameters, so the discard path has no work at all.
        let Some(grad_in) = grad_in else { return };
        let (_, _, oh, ow) = grad_out.dims4();
        let norm = 1.0 / (self.k * self.k) as f32;
        grad_in.resize(&[n, c, h, w]);
        grad_in.as_mut_slice().fill(0.0);
        for ni in 0..n {
            for ci in 0..c {
                let src =
                    &grad_out.as_slice()[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
                let dst =
                    &mut grad_in.as_mut_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = src[oy * ow + ox] * norm;
                        for dy in 0..self.k {
                            let row = (oy * self.k + dy) * w + ox * self.k;
                            for dx in 0..self.k {
                                dst[row + dx] += g;
                            }
                        }
                    }
                }
            }
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("AvgPool2d({0}x{0})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use crate::init;

    #[test]
    fn averages_blocks() {
        let mut pool = AvgPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(&[1, 1, 2, 4], vec![
            1.0, 3.0, 0.0, 8.0,
            5.0, 7.0, 4.0, 0.0,
        ]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn preserves_mean() {
        let mut pool = AvgPool2d::new(4);
        let x = init::uniform(&[2, 3, 8, 8], -1.0, 1.0, 6);
        let y = pool.forward(&x, true);
        assert!((y.mean() - x.mean()).abs() < 1e-5);
    }

    #[test]
    fn gradients_check_out() {
        let mut pool = AvgPool2d::new(2);
        let x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, 7);
        gradcheck::check_input_gradient(&mut pool, &x, 0.02);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut pool = AvgPool2d::new(2);
        let _ = pool.backward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
