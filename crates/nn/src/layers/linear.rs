//! Fully connected layer.

use super::{Layer, Param};
use crate::tensor::{matmul_nt, matmul_tn};
use crate::{init, Tensor};

/// A fully connected layer `y = x·Wᵀ + b` over `[N, in]` tensors.
///
/// Weight layout is `[out, in]` (each row maps the input to one output
/// feature), Xavier-uniform initialized.
///
/// ```
/// use ganopc_nn::{layers::{Layer, Linear}, Tensor};
/// let mut fc = Linear::new(4, 2, 1);
/// let y = fc.forward(&Tensor::zeros(&[3, 4]), true);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cache_input: Option<Tensor>,
}

impl Linear {
    /// Creates a fully connected layer.
    ///
    /// # Panics
    ///
    /// Panics on zero feature counts.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "degenerate linear geometry");
        Linear {
            in_features,
            out_features,
            weight: Param::new(init::xavier_uniform(&[out_features, in_features], seed)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache_input: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (n, f) = input.dims2();
        assert_eq!(f, self.in_features, "Linear expects {} features, got {f}", self.in_features);
        // y [n × out] = x [n × in] · Wᵀ, W stored [out × in].
        let mut y = matmul_nt(
            input.as_slice(),
            self.weight.value.as_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        for row in y.chunks_exact_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(self.bias.value.as_slice()) {
                *v += b;
            }
        }
        self.cache_input = Some(input.clone());
        Tensor::from_vec(&[n, self.out_features], y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cache_input.as_ref().expect("backward before forward");
        let (n, _) = input.dims2();
        let (gn, go) = grad_out.dims2();
        assert_eq!((gn, go), (n, self.out_features), "grad_out shape mismatch");
        // dW [out × in] += gOᵀ [out × n] · x [n × in].
        let dw = matmul_tn(
            grad_out.as_slice(),
            input.as_slice(),
            self.out_features,
            n,
            self.in_features,
        );
        for (g, d) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
            *g += d;
        }
        for row in grad_out.as_slice().chunks_exact(self.out_features) {
            for (g, &v) in self.bias.grad.as_mut_slice().iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx [n × in] = gO [n × out] · W [out × in].
        let dx = crate::tensor::matmul(
            grad_out.as_slice(),
            self.weight.value.as_slice(),
            n,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(&[n, self.in_features], dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!("Linear({}→{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;

    #[test]
    fn known_affine_map() {
        let mut fc = Linear::new(2, 2, 0);
        fc.weight.value = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        fc.bias.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = fc.forward(&Tensor::from_vec(&[1, 2], vec![1.0, 1.0]), true);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn gradients_check_out() {
        let mut fc = Linear::new(5, 3, 2);
        let x = init::uniform(&[4, 5], -1.0, 1.0, 3);
        gradcheck::check_input_gradient(&mut fc, &x, 0.02);
        gradcheck::check_param_gradients(&mut fc, &x, 0.02);
    }

    #[test]
    #[should_panic(expected = "expects 5 features")]
    fn rejects_wrong_width() {
        let mut fc = Linear::new(5, 3, 2);
        let _ = fc.forward(&Tensor::zeros(&[1, 4]), true);
    }
}
