//! Fully connected layer.

use super::{Layer, Param};
use crate::gemm::{matmul_into, matmul_nt_into, matmul_tn_into};
use crate::{init, Tensor};

/// A fully connected layer `y = x·Wᵀ + b` over `[N, in]` tensors.
///
/// Weight layout is `[out, in]` (each row maps the input to one output
/// feature), Xavier-uniform initialized.
///
/// ```
/// use ganopc_nn::{layers::{Layer, Linear}, Tensor};
/// let mut fc = Linear::new(4, 2, 1);
/// let y = fc.forward(&Tensor::zeros(&[3, 4]), true);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    /// Persistent copy of the last forward input (reused across steps).
    cache_input: Option<Tensor>,
    /// Scratch for the weight-gradient product, reused across steps.
    scratch_dw: Vec<f32>,
}

impl Linear {
    /// Creates a fully connected layer.
    ///
    /// # Panics
    ///
    /// Panics on zero feature counts.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "degenerate linear geometry");
        Linear {
            in_features,
            out_features,
            weight: Param::new(init::xavier_uniform(&[out_features, in_features], seed)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache_input: None,
            scratch_dw: Vec::new(),
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let (n, f) = input.dims2();
        assert_eq!(f, self.in_features, "Linear expects {} features, got {f}", self.in_features);
        out.resize(&[n, self.out_features]);
        // y [n × out] = x [n × in] · Wᵀ, W stored [out × in].
        matmul_nt_into(
            out.as_mut_slice(),
            input.as_slice(),
            self.weight.value.as_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        for row in out.as_mut_slice().chunks_exact_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(self.bias.value.as_slice()) {
                *v += b;
            }
        }
        match &mut self.cache_input {
            Some(t) => t.copy_from(input),
            // ALLOC: one-time cache init on the first forward; later
            // steps reuse the buffer via copy_from.
            None => self.cache_input = Some(input.clone()),
        }
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let input = self.cache_input.as_ref().expect("backward before forward");
        let (n, _) = input.dims2();
        let (gn, go) = grad_out.dims2();
        assert_eq!((gn, go), (n, self.out_features), "grad_out shape mismatch");
        // dW [out × in] += gOᵀ [out × n] · x [n × in].
        self.scratch_dw.resize(self.out_features * self.in_features, 0.0);
        matmul_tn_into(
            &mut self.scratch_dw,
            grad_out.as_slice(),
            input.as_slice(),
            self.out_features,
            n,
            self.in_features,
        );
        for (g, d) in self.weight.grad.as_mut_slice().iter_mut().zip(&self.scratch_dw) {
            *g += d;
        }
        for row in grad_out.as_slice().chunks_exact(self.out_features) {
            for (g, &v) in self.bias.grad.as_mut_slice().iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx [n × in] = gO [n × out] · W [out × in] — skipped on discard.
        if let Some(gi) = grad_in {
            gi.resize(&[n, self.in_features]);
            matmul_into(
                gi.as_mut_slice(),
                grad_out.as_slice(),
                self.weight.value.as_slice(),
                n,
                self.out_features,
                self.in_features,
            );
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!("Linear({}→{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;

    #[test]
    fn known_affine_map() {
        let mut fc = Linear::new(2, 2, 0);
        fc.weight.value = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        fc.bias.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = fc.forward(&Tensor::from_vec(&[1, 2], vec![1.0, 1.0]), true);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn gradients_check_out() {
        let mut fc = Linear::new(5, 3, 2);
        let x = init::uniform(&[4, 5], -1.0, 1.0, 3);
        gradcheck::check_input_gradient(&mut fc, &x, 0.02);
        gradcheck::check_param_gradients(&mut fc, &x, 0.02);
    }

    #[test]
    #[should_panic(expected = "expects 5 features")]
    fn rejects_wrong_width() {
        let mut fc = Linear::new(5, 3, 2);
        let _ = fc.forward(&Tensor::zeros(&[1, 4]), true);
    }
}
