//! Layers with manual forward/backward passes.
//!
//! Each layer caches whatever its backward pass needs during `forward`;
//! `backward` consumes that cache and returns the gradient with respect to
//! the layer input while accumulating parameter gradients into its
//! [`Param`]s. Gradients accumulate across calls until
//! [`Sequential::zero_grads`] (mini-batch accumulation, paper Algorithms 1
//! and 2 lines 9–10).

mod activations;
mod batchnorm;
mod conv;
mod convcore;
mod dropout;
mod flatten;
mod linear;
mod pooling;

pub use activations::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pooling::AvgPool2d;

pub(crate) use convcore::{col2im_into, conv_out_size, deconv_out_size, im2col_into};

use crate::{NnError, Tensor};

/// A trainable parameter: its value and the accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initialized value with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations for the next
/// `backward`. Calling `backward` without a preceding `forward` panics.
pub trait Layer: Send {
    /// Computes the layer output. `train` selects training behaviour
    /// (e.g. batch statistics in [`BatchNorm2d`]).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out`, accumulating parameter gradients, and
    /// returns the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Buffer-reusing forward: writes the output into `out`, resizing it in
    /// place. `out` must not alias `input`. Layers override this with an
    /// allocation-free kernel; the default funnels through the allocating
    /// [`Layer::forward`].
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        *out = self.forward(input, train);
    }

    /// Buffer-reusing backward: accumulates parameter gradients and, when
    /// `grad_in` is `Some`, writes the input gradient into it (resized in
    /// place; must not alias `grad_out`). `None` is the discard path: the
    /// layer skips computing the input gradient entirely (the first layer
    /// of a network feeds data, not another layer).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        let g = self.backward(grad_out);
        if let Some(dst) = grad_in {
            *dst = g;
        }
    }

    /// In-place forward for element-wise layers: transforms `x` directly,
    /// returning `true`, or returns `false` (touching nothing) when the
    /// layer cannot run in place. [`Sequential`] uses this to fuse
    /// activation application into the preceding layer's output buffer.
    fn forward_inplace(&mut self, _x: &mut Tensor, _train: bool) -> bool {
        false
    }

    /// In-place counterpart of [`Layer::forward_inplace`] for the gradient:
    /// transforms `g` directly and returns `true`, or returns `false` when
    /// unsupported.
    fn backward_inplace(&mut self, _g: &mut Tensor) -> bool {
        false
    }

    /// Visits every trainable parameter (values and gradients), in a stable
    /// order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits non-trainable state buffers (e.g. batch-norm running
    /// statistics) that must survive checkpointing, in a stable order.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}

    /// Short human-readable layer description for architecture summaries.
    fn describe(&self) -> String;
}

/// An ordered stack of layers trained end-to-end.
///
/// ```
/// use ganopc_nn::{layers::{Linear, Relu, Sequential}, Tensor};
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, 1));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 1, 2));
/// let y = net.forward(&Tensor::zeros(&[3, 4]), true);
/// assert_eq!(y.shape(), &[3, 1]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Two persistent transit buffers ping-ponged between layers by
    /// [`Sequential::forward_into`] / [`Sequential::backward_into`]. Sized
    /// lazily on first use and reused across steps; each layer owns its own
    /// backward caches, so the tape is free for the gradient pass as soon
    /// as the forward pass ends.
    tape: Vec<Tensor>,
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the full forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Back-propagates through the whole stack, returning the gradient with
    /// respect to the network input (needed to chain the discriminator's
    /// gradient into the generator and the litho gradient into the decoder).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Buffer-reusing forward pass: runs the stack through the persistent
    /// two-slot tape and writes the network output into `out` (resized in
    /// place). Element-wise layers transform the current tape slot in place
    /// via [`Layer::forward_inplace`]; everything else ping-pongs between
    /// the two slots. After the first call has sized the tape, the pass
    /// performs no heap allocation. Results are bit-identical to
    /// [`Sequential::forward`].
    pub fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        let n = self.layers.len();
        if n == 0 {
            out.copy_from(input);
            return;
        }
        self.ensure_tape();
        // `cur` tracks which tape slot holds the running activation; `None`
        // means the caller's input is still the source (first layer only,
        // which therefore never runs in place).
        let mut cur: Option<usize> = None;
        for i in 0..n {
            let last = i + 1 == n;
            match cur {
                None if last => self.layers[i].forward_into(input, out, train),
                None => {
                    self.layers[i].forward_into(input, &mut self.tape[0], train);
                    cur = Some(0);
                }
                Some(t) if last => {
                    let (a, b) = self.tape.split_at_mut(1);
                    let src = if t == 0 { &a[0] } else { &b[0] };
                    self.layers[i].forward_into(src, out, train);
                }
                Some(t) => {
                    if self.layers[i].forward_inplace(&mut self.tape[t], train) {
                        continue;
                    }
                    let (src, dst) = tape_pair(&mut self.tape, t);
                    self.layers[i].forward_into(src, dst, train);
                    cur = Some(1 - t);
                }
            }
        }
    }

    /// Buffer-reusing backward pass through the same persistent tape.
    /// `grad_in = Some(buf)` receives the input gradient (resized in
    /// place); `None` lets the first layer skip computing it entirely —
    /// the discard path for networks whose input is data, not another
    /// network. Results are bit-identical to [`Sequential::backward`].
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    pub fn backward_into(&mut self, grad_out: &Tensor, mut grad_in: Option<&mut Tensor>) {
        let n = self.layers.len();
        if n == 0 {
            if let Some(dst) = grad_in {
                dst.copy_from(grad_out);
            }
            return;
        }
        self.ensure_tape();
        let mut cur: Option<usize> = None;
        for i in (0..n).rev() {
            let first = i == 0;
            match cur {
                None if first => self.layers[i].backward_into(grad_out, grad_in.take()),
                None => {
                    self.layers[i].backward_into(grad_out, Some(&mut self.tape[0]));
                    cur = Some(0);
                }
                Some(t) if first => {
                    let (a, b) = self.tape.split_at_mut(1);
                    let src = if t == 0 { &a[0] } else { &b[0] };
                    self.layers[i].backward_into(src, grad_in.take());
                }
                Some(t) => {
                    if self.layers[i].backward_inplace(&mut self.tape[t]) {
                        continue;
                    }
                    let (src, dst) = tape_pair(&mut self.tape, t);
                    self.layers[i].backward_into(src, Some(dst));
                    cur = Some(1 - t);
                }
            }
        }
    }

    /// Backward pass that discards the input gradient — shorthand for
    /// [`Sequential::backward_into`] with `grad_in = None`.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run.
    pub fn backward_discard(&mut self, grad_out: &Tensor) {
        self.backward_into(grad_out, None);
    }

    fn ensure_tape(&mut self) {
        if self.tape.is_empty() {
            self.tape = vec![Tensor::zeros(&[1]), Tensor::zeros(&[1])];
        }
    }

    /// Visits every parameter of every layer in order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut acc = 0.0f64;
        self.visit_params(&mut |p| {
            for &g in p.grad.as_slice() {
                acc += (g as f64) * (g as f64);
            }
        });
        acc.sqrt() as f32
    }

    /// Rescales all gradients so their global L2 norm does not exceed
    /// `max_norm` (standard GAN-stabilizing gradient clipping). Returns the
    /// pre-clip norm.
    ///
    /// # Panics
    ///
    /// Panics unless `max_norm > 0`.
    pub fn clip_gradients(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.grad_norm();
        if norm > max_norm {
            let scale = max_norm / norm;
            self.visit_params(&mut |p| {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            });
        }
        norm
    }

    /// Total trainable scalar count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Visits every non-trainable state buffer of every layer in order.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }

    /// Extracts a snapshot of all parameter values *and* state buffers
    /// (batch-norm running statistics), so a restored network reproduces
    /// evaluation-mode outputs exactly.
    pub fn export_params(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.export_params_into(&mut out);
        out
    }

    /// Buffer-reusing variant of [`Sequential::export_params`]: overwrites
    /// `out` in place, recycling matching-shape slots from a previous
    /// snapshot so repeated exports (e.g. best-validation snapshotting every
    /// improvement) stop cloning the full parameter set.
    pub fn export_params_into(&mut self, out: &mut Vec<Tensor>) {
        fn write_slot(out: &mut Vec<Tensor>, idx: usize, shape: &[usize], data: &[f32]) {
            match out.get_mut(idx) {
                Some(slot) if slot.shape() == shape => slot.as_mut_slice().copy_from_slice(data),
                Some(slot) => *slot = Tensor::from_vec(shape, data.to_vec()),
                None => out.push(Tensor::from_vec(shape, data.to_vec())),
            }
        }
        let mut idx = 0usize;
        self.visit_params(&mut |p| {
            write_slot(out, idx, p.value.shape(), p.value.as_slice());
            idx += 1;
        });
        self.visit_buffers(&mut |b| {
            write_slot(out, idx, &[b.len()], b);
            idx += 1;
        });
        out.truncate(idx);
    }

    /// Loads a snapshot produced by [`Sequential::export_params`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LoadMismatch`] when the snapshot layout differs
    /// from the network.
    pub fn import_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        let mut idx = 0usize;
        let mut err: Option<String> = None;
        self.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            match params.get(idx) {
                Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
                Some(t) => {
                    err = Some(format!(
                        "param {idx}: expected shape {:?}, got {:?}",
                        p.value.shape(),
                        t.shape()
                    ))
                }
                None => err = Some(format!("snapshot ends at param {idx}")),
            }
            idx += 1;
        });
        self.visit_buffers(&mut |b| {
            if err.is_some() {
                return;
            }
            match params.get(idx) {
                Some(t) if t.len() == b.len() => b.copy_from_slice(t.as_slice()),
                Some(t) => {
                    err =
                        Some(format!("buffer {idx}: expected length {}, got {}", b.len(), t.len()))
                }
                None => err = Some(format!("snapshot ends at buffer {idx}")),
            }
            idx += 1;
        });
        if err.is_none() && idx != params.len() {
            err = Some(format!("snapshot has {} entries, network has {idx}", params.len()));
        }
        match err {
            Some(msg) => Err(NnError::LoadMismatch(msg)),
            None => Ok(()),
        }
    }

    /// Multi-line architecture summary (layer descriptions + param counts).
    pub fn summary(&mut self) -> String {
        let mut lines = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            lines.push(format!("{i:>3}  {}", layer.describe()));
        }
        lines.push(format!("total parameters: {}", self.param_count()));
        lines.join("\n")
    }
}

/// Splits the two-slot tape into `(source, destination)` around the slot
/// currently holding the activation/gradient.
fn tape_pair(tape: &mut [Tensor], src: usize) -> (&Tensor, &mut Tensor) {
    let (a, b) = tape.split_at_mut(1);
    if src == 0 {
        (&a[0], &mut b[0])
    } else {
        (&b[0], &mut a[0])
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential").field("layers", &self.layers.len()).finish()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.
    use super::*;

    /// Checks `d loss / d input` of a layer against central differences,
    /// where `loss = Σ output ⊙ weights` for a fixed random weighting.
    pub fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        // Fixed weighting makes the scalar loss sensitive to every output.
        let weights: Vec<f32> =
            (0..out.len()).map(|i| ((i * 2654435761) % 17) as f32 / 8.0 - 1.0).collect();
        let loss = |o: &Tensor| -> f64 {
            o.as_slice().iter().zip(&weights).map(|(&v, &w)| v as f64 * w as f64).sum()
        };
        let grad_out = Tensor::from_vec(out.shape(), weights.clone());
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-2f32;
        for probe in 0..input.len().min(24) {
            let i = (probe * 7919) % input.len();
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let lp = loss(&layer.forward(&plus, true));
            let lm = loss(&layer.forward(&minus, true));
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grad_in.as_slice()[i];
            let denom = fd.abs().max(an.abs()).max(0.3);
            assert!((fd - an).abs() / denom < tol, "input grad at {i}: fd {fd} vs analytic {an}");
        }
    }

    /// Checks parameter gradients against central differences.
    pub fn check_param_gradients<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        let weights: Vec<f32> =
            (0..out.len()).map(|i| ((i * 2654435761) % 17) as f32 / 8.0 - 1.0).collect();
        let grad_out = Tensor::from_vec(out.shape(), weights.clone());
        // Fresh grads, one backward.
        layer.visit_params(&mut |p| p.zero_grad());
        let _ = layer.backward(&grad_out);
        let mut analytic: Vec<Tensor> = Vec::new();
        layer.visit_params(&mut |p| analytic.push(p.grad.clone()));

        let loss = |layer: &mut L, x: &Tensor| -> f64 {
            let o = layer.forward(x, true);
            o.as_slice().iter().zip(&weights).map(|(&v, &w)| v as f64 * w as f64).sum()
        };
        let eps = 1e-2f32;
        let mut n_params = 0usize;
        layer.visit_params(&mut |_| n_params += 1);
        #[allow(clippy::needless_range_loop)]
        for pi in 0..n_params {
            let len = analytic[pi].len();
            for probe in 0..len.min(12) {
                let i = (probe * 104729) % len;
                let mutate = |layer: &mut L, delta: f32| {
                    let mut idx = 0;
                    layer.visit_params(&mut |p| {
                        if idx == pi {
                            p.value.as_mut_slice()[i] += delta;
                        }
                        idx += 1;
                    });
                };
                mutate(layer, eps);
                let lp = loss(layer, input);
                mutate(layer, -2.0 * eps);
                let lm = loss(layer, input);
                mutate(layer, eps); // restore
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let an = analytic[pi].as_slice()[i];
                let denom = fd.abs().max(an.abs()).max(0.3);
                assert!(
                    (fd - an).abs() / denom < tol,
                    "param {pi} grad at {i}: fd {fd} vs analytic {an}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 4, 3, 2, 1, 1));
        net.push(Relu::new());
        net.push(Conv2d::new(4, 8, 3, 2, 1, 2));
        net.push(Flatten::new());
        net.push(Linear::new(8 * 4 * 4, 1, 3));
        net.push(Sigmoid::new());
        let x = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 5);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 1]);
        let gin = net.backward(&Tensor::filled(&[2, 1], 1.0));
        assert_eq!(gin.shape(), x.shape());
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut net = Sequential::new();
        net.push(Linear::new(3, 2, 1));
        let x = init::uniform(&[4, 3], -1.0, 1.0, 2);
        let y = net.forward(&x, true);
        let _ = net.backward(&Tensor::filled(y.shape(), 1.0));
        let mut any_nonzero = false;
        net.visit_params(&mut |p| any_nonzero |= p.grad.max_abs() > 0.0);
        assert!(any_nonzero);
        net.zero_grads();
        net.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, 9));
        let x = init::uniform(&[1, 2], -1.0, 1.0, 3);
        let g = Tensor::filled(&[1, 2], 1.0);
        net.forward(&x, true);
        net.backward(&g);
        let mut once = Vec::new();
        net.visit_params(&mut |p| once.push(p.grad.clone()));
        net.forward(&x, true);
        net.backward(&g);
        let mut twice = Vec::new();
        net.visit_params(&mut |p| twice.push(p.grad.clone()));
        for (a, b) in once.iter().zip(&twice) {
            for (x1, x2) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x2 - 2.0 * x1).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut net = Sequential::new();
        net.push(Linear::new(4, 4, 3));
        let x = init::uniform(&[8, 4], -1.0, 1.0, 1);
        let y = net.forward(&x, true);
        net.backward(&Tensor::filled(y.shape(), 10.0));
        let before = net.grad_norm();
        assert!(before > 1.0);
        let reported = net.clip_gradients(1.0);
        assert!((reported - before).abs() < 1e-4);
        assert!((net.grad_norm() - 1.0).abs() < 1e-3);
        // Clipping below the norm is a no-op.
        let unchanged = net.clip_gradients(5.0);
        assert!((unchanged - 1.0).abs() < 1e-3);
        assert!((net.grad_norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut net = Sequential::new();
        net.push(Linear::new(3, 3, 11));
        let snapshot = net.export_params();
        let x = init::uniform(&[2, 3], -1.0, 1.0, 4);
        let before = net.forward(&x, false);
        // Perturb, then restore.
        net.visit_params(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v += 1.0;
            }
        });
        assert_ne!(net.forward(&x, false), before);
        net.import_params(&snapshot).unwrap();
        assert_eq!(net.forward(&x, false), before);
    }

    #[test]
    fn import_rejects_wrong_layout() {
        let mut net = Sequential::new();
        net.push(Linear::new(3, 3, 11));
        let err = net.import_params(&[Tensor::zeros(&[2, 2])]);
        assert!(matches!(err, Err(NnError::LoadMismatch(_))));
        let err2 = net.import_params(&[]);
        assert!(matches!(err2, Err(NnError::LoadMismatch(_))));
    }

    #[test]
    fn summary_lists_layers_and_params() {
        let mut net = Sequential::new();
        net.push(Linear::new(4, 2, 0));
        net.push(Relu::new());
        let s = net.summary();
        assert!(s.contains("Linear"), "{s}");
        assert!(s.contains("total parameters: 10"), "{s}");
    }
}
