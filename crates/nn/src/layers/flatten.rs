//! Flattening between convolutional and dense stages.

use super::{Layer, Param};
use crate::Tensor;

/// Flattens `[N, C, H, W]` to `[N, C·H·W]`; backward restores the shape.
///
/// ```
/// use ganopc_nn::{layers::{Flatten, Layer}, Tensor};
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 3, 4, 4]), true);
/// assert_eq!(y.shape(), &[2, 48]);
/// ```
#[derive(Debug, Default)]
pub struct Flatten {
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cache_shape: None }
    }

    /// Records the pre-flatten shape (reusing the cached vector) and
    /// returns the flattened `[N, rest]` dimensions.
    fn cache(&mut self, shape: &[usize]) -> (usize, usize) {
        assert!(shape.len() >= 2, "flatten needs a batch dimension");
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        match &mut self.cache_shape {
            Some(v) => {
                v.clear();
                v.extend_from_slice(shape);
            }
            None => self.cache_shape = Some(shape.to_vec()),
        }
        (n, rest)
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (n, rest) = self.cache(input.shape());
        input.clone().reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let shape = self.cache_shape.as_ref().expect("backward before forward");
        grad_out.clone().reshape(shape)
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, _train: bool) {
        let (n, rest) = self.cache(input.shape());
        out.resize(&[n, rest]);
        out.as_mut_slice().copy_from_slice(input.as_slice());
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let shape = self.cache_shape.as_ref().expect("backward before forward");
        if let Some(gi) = grad_in {
            gi.resize(shape);
            gi.as_mut_slice().copy_from_slice(grad_out.as_slice());
        }
    }

    // lint: hot-path
    fn forward_inplace(&mut self, x: &mut Tensor, _train: bool) -> bool {
        let (n, rest) = self.cache(x.shape());
        x.set_shape(&[n, rest]);
        true
    }

    // lint: hot-path
    fn backward_inplace(&mut self, g: &mut Tensor) -> bool {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let shape = self.cache_shape.as_ref().expect("backward before forward");
        g.set_shape(shape);
        true
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "Flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 1, 3], (0..12).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 6]);
        assert_eq!(y.as_slice(), x.as_slice());
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        let _ = f.backward(&Tensor::zeros(&[1, 4]));
    }
}
