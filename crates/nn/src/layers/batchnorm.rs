//! 2-D batch normalization.

use super::{Layer, Param};
use crate::Tensor;

/// Per-channel batch normalization over `[N, C, H, W]` tensors.
///
/// Training mode normalizes with batch statistics and updates exponential
/// running averages; evaluation mode uses the running averages. Learnable
/// scale `γ` (init 1) and shift `β` (init 0).
///
/// ```
/// use ganopc_nn::{layers::{BatchNorm2d, Layer}, Tensor};
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::filled(&[2, 3, 4, 4], 5.0), true);
/// // A constant input normalizes to (numerically) zero.
/// assert!(y.max_abs() < 1e-3);
/// ```
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Cache: normalized input, per-channel 1/σ, input shape.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batchnorm needs at least one channel");
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::filled(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// The running mean estimate (for inspection/serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running variance estimate.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[1]);
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[1]);
        self.backward_into(grad_out, Some(&mut grad_in));
        grad_in
    }

    // lint: hot-path
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        let (n, c, h, w) = input.dims4();
        assert_eq!(c, self.channels, "BatchNorm2d expects {} channels, got {c}", self.channels);
        let plane = h * w;
        let count = (n * plane) as f32;
        out.resize(&[n, c, h, w]);
        // Reuse the persistent normalized-input / 1/σ cache across steps.
        if self.cache.is_none() {
            // ALLOC: one-time cache init on the first forward; the inner
            // buffers are resized in place on every later step.
            self.cache = Some((Tensor::zeros(&[1]), Vec::new()));
        }
        // PANIC: the cache was unconditionally initialized just above.
        let (xhat, inv_stds) = self.cache.as_mut().expect("cache initialized above");
        xhat.resize(&[n, c, h, w]);
        inv_stds.clear();
        inv_stds.resize(c, 0.0);

        #[allow(clippy::needless_range_loop)]
        for ci in 0..c {
            let (mean, var) = if train {
                let mut mean = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    mean += input.as_slice()[base..base + plane].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &input.as_slice()[base..base + plane] {
                        let d = v - mean;
                        var += d * d;
                    }
                }
                var /= count;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.as_slice()[ci];
            let b = self.beta.value.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xh = (input.as_slice()[i] - mean) * inv_std;
                    xhat.as_mut_slice()[i] = xh;
                    out.as_mut_slice()[i] = g * xh + b;
                }
            }
        }
    }

    // lint: hot-path
    fn backward_into(&mut self, grad_out: &Tensor, mut grad_in: Option<&mut Tensor>) {
        // PANIC: Layer contract — backward runs only after forward cached state.
        let (xhat, inv_stds) = self.cache.as_ref().expect("backward before forward");
        let (n, c, h, w) = grad_out.dims4();
        let plane = h * w;
        let count = (n * plane) as f32;
        if let Some(gi) = grad_in.as_deref_mut() {
            gi.resize(&[n, c, h, w]);
        }
        #[allow(clippy::needless_range_loop)]
        for ci in 0..c {
            let g = self.gamma.value.as_slice()[ci];
            // Channel-wise sums of gO and gO ⊙ x̂.
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    sum_g += grad_out.as_slice()[i];
                    sum_gx += grad_out.as_slice()[i] * xhat.as_slice()[i];
                }
            }
            self.beta.grad.as_mut_slice()[ci] += sum_g;
            self.gamma.grad.as_mut_slice()[ci] += sum_gx;
            // Standard batch-norm input gradient (batch statistics path) —
            // skipped entirely on the discard path.
            let Some(gi) = grad_in.as_deref_mut() else { continue };
            let k = g * inv_stds[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let go = grad_out.as_slice()[i];
                    let xh = xhat.as_slice()[i];
                    gi.as_mut_slice()[i] = k * (go - sum_g / count - xh * sum_gx / count);
                }
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn describe(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck;
    use super::*;
    use crate::init;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = init::uniform(&[4, 2, 3, 3], 2.0, 6.0, 17);
        let y = bn.forward(&x, true);
        // Each channel of the output should be ~N(0,1) over the batch.
        let (n, c, h, w) = y.dims4();
        let plane = h * w;
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::filled(&[2, 1, 2, 2], 3.0);
        // Train long enough for running stats to converge toward (3, 0).
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 3.0).abs() < 0.1);
        // In eval mode the same constant input maps near zero.
        let y = bn.forward(&x, false);
        assert!(y.max_abs() < 0.2, "eval output {:?}", y.as_slice());
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value = Tensor::from_vec(&[1], vec![2.0]);
        bn.beta.value = Tensor::from_vec(&[1], vec![1.0]);
        let x = init::uniform(&[2, 1, 2, 2], -1.0, 1.0, 5);
        let y = bn.forward(&x, true);
        let mean: f32 = y.mean();
        assert!((mean - 1.0).abs() < 1e-4, "beta should shift mean, got {mean}");
    }

    #[test]
    fn gradients_check_out() {
        let mut bn = BatchNorm2d::new(2);
        let x = init::uniform(&[3, 2, 4, 4], -1.0, 1.0, 21);
        gradcheck::check_input_gradient(&mut bn, &x, 0.05);
        gradcheck::check_param_gradients(&mut bn, &x, 0.05);
    }

    #[test]
    #[should_panic(expected = "expects 2 channels")]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(2);
        let _ = bn.forward(&Tensor::zeros(&[1, 3, 2, 2]), true);
    }
}
