//! Losses with input gradients.
//!
//! The GAN-OPC objectives (paper Eq. (7)–(10) and Algorithm 1 lines 7–8)
//! combine binary cross-entropy on discriminator probabilities with an L2
//! (squared error) term pulling generated masks toward the reference masks.
//! Both pieces live here as `(value, gradient)` pairs.

use crate::{guard, Tensor};

/// Mean squared error `Σ (a − b)² / N` and its gradient with respect to `a`.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use ganopc_nn::{loss::mse, Tensor};
/// let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec(&[2], vec![0.0, 2.0]);
/// let (value, grad) = mse(&a, &b);
/// assert!((value - 0.5).abs() < 1e-6);
/// assert_eq!(grad.as_slice(), &[1.0, 0.0]);
/// ```
pub fn mse(a: &Tensor, b: &Tensor) -> (f64, Tensor) {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    let n = a.len() as f64;
    let mut value = 0.0f64;
    let grad: Vec<f32> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x - y;
            value += (d as f64) * (d as f64);
            2.0 * d / n as f32
        })
        .collect();
    guard::check_finite_scalar("mse loss", value / n);
    (value / n, Tensor::from_vec(a.shape(), grad))
}

/// *Summed* squared error `Σ (a − b)²` and its gradient — the paper's
/// `‖M* − M‖₂²` term (Algorithm 1 line 7) without averaging, so the α weight
/// in the combined loss means the same thing it does in the paper.
pub fn sum_squared_error(a: &Tensor, b: &Tensor) -> (f64, Tensor) {
    assert_eq!(a.shape(), b.shape(), "sse shape mismatch");
    let mut value = 0.0f64;
    let grad: Vec<f32> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x - y;
            value += (d as f64) * (d as f64);
            2.0 * d
        })
        .collect();
    guard::check_finite_scalar("sse loss", value);
    (value, Tensor::from_vec(a.shape(), grad))
}

/// Fused-scale variant of [`sum_squared_error`]: returns `Σ (a − b)²` and
/// **accumulates** `scale · 2(a − b)` into `grad` (which must already have
/// the same shape). Folding the batch/weight scale into the gradient pass
/// avoids materializing the intermediate gradient tensor in the trainer.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn sum_squared_error_acc_into(a: &Tensor, b: &Tensor, scale: f32, grad: &mut Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "sse shape mismatch");
    assert_eq!(grad.shape(), a.shape(), "sse grad shape mismatch");
    let mut value = 0.0f64;
    for ((g, &x), &y) in grad.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        let d = x - y;
        value += (d as f64) * (d as f64);
        *g += (2.0 * d) * scale;
    }
    guard::check_finite_scalar("sse loss", value);
    guard::check_finite_slice("sse gradient", grad.as_slice());
    value
}

/// Clamps a probability away from 0/1 so `log` stays finite.
#[inline]
fn clamp_p(p: f32) -> f32 {
    p.clamp(1e-6, 1.0 - 1e-6)
}

/// Binary cross-entropy against constant label `y ∈ {0, 1}` on
/// probabilities (post-sigmoid): mean of `−[y·log p + (1−y)·log(1−p)]`,
/// plus the gradient with respect to `p`.
///
/// `bce_scalar_label(p, 1.0)` is the `−log D(·)` generator objective;
/// `bce_scalar_label(p, 0.0)` is the `−log(1 − D(·))` discriminator term
/// for generated samples.
///
/// # Panics
///
/// Panics unless `label` is exactly 0 or 1.
pub fn bce_scalar_label(p: &Tensor, label: f32) -> (f64, Tensor) {
    assert!(label == 0.0 || label == 1.0, "label must be 0 or 1");
    let n = p.len() as f64;
    let mut value = 0.0f64;
    let grad: Vec<f32> = p
        .as_slice()
        .iter()
        .map(|&raw| {
            let pc = clamp_p(raw);
            if label == 1.0 {
                value += -(pc as f64).ln();
                -1.0 / (pc * n as f32)
            } else {
                value += -((1.0 - pc) as f64).ln();
                1.0 / ((1.0 - pc) * n as f32)
            }
        })
        .collect();
    guard::check_finite_scalar("bce loss", value / n);
    (value / n, Tensor::from_vec(p.shape(), grad))
}

/// Fused-scale variant of [`bce_scalar_label`]: writes `scale · ∂BCE/∂p`
/// into `grad` (resized to match `p`) and returns the mean BCE value. The
/// per-element gradient is computed exactly as in the allocating version and
/// then multiplied by `scale`, so `scale = 1` reproduces it bit for bit.
///
/// # Panics
///
/// Panics unless `label` is exactly 0 or 1.
pub fn bce_scalar_label_into(p: &Tensor, label: f32, scale: f32, grad: &mut Tensor) -> f64 {
    assert!(label == 0.0 || label == 1.0, "label must be 0 or 1");
    let n = p.len() as f64;
    grad.resize(p.shape());
    let mut value = 0.0f64;
    for (g, &raw) in grad.as_mut_slice().iter_mut().zip(p.as_slice()) {
        let pc = clamp_p(raw);
        let base = if label == 1.0 {
            value += -(pc as f64).ln();
            -1.0 / (pc * n as f32)
        } else {
            value += -((1.0 - pc) as f64).ln();
            1.0 / ((1.0 - pc) * n as f32)
        };
        *g = base * scale;
    }
    guard::check_finite_scalar("bce loss", value / n);
    guard::check_finite_slice("bce gradient", grad.as_slice());
    value / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(f: &dyn Fn(&Tensor) -> (f64, Tensor), x: &Tensor, tol: f32) {
        let (_, grad) = f(x);
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            let fd = ((f(&plus).0 - f(&minus).0) / (2.0 * eps as f64)) as f32;
            let an = grad.as_slice()[i];
            assert!((fd - an).abs() < tol * fd.abs().max(an.abs()).max(1.0), "i={i}: {fd} vs {an}");
        }
    }

    #[test]
    fn mse_zero_at_match() {
        let a = Tensor::from_vec(&[3], vec![1.0, -1.0, 0.5]);
        let (v, g) = mse(&a, &a);
        assert_eq!(v, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_fd() {
        let b = Tensor::from_vec(&[4], vec![0.1, 0.9, 0.4, -0.3]);
        let x = Tensor::from_vec(&[4], vec![0.7, -0.2, 0.0, 0.5]);
        fd_check(&|t| mse(t, &b), &x, 0.01);
    }

    #[test]
    fn sse_is_n_times_mse() {
        let a = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::zeros(&[4]);
        let (m, _) = mse(&a, &b);
        let (s, _) = sum_squared_error(&a, &b);
        assert!((s - 4.0 * m).abs() < 1e-9);
    }

    #[test]
    fn sse_gradient_fd() {
        let b = Tensor::from_vec(&[3], vec![0.3, -0.2, 0.8]);
        let x = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        fd_check(&|t| sum_squared_error(t, &b), &x, 0.01);
    }

    #[test]
    fn bce_label_one_penalizes_low_probability() {
        let near_one = Tensor::from_vec(&[1], vec![0.99]);
        let near_zero = Tensor::from_vec(&[1], vec![0.01]);
        assert!(bce_scalar_label(&near_one, 1.0).0 < bce_scalar_label(&near_zero, 1.0).0);
        assert!(bce_scalar_label(&near_zero, 0.0).0 < bce_scalar_label(&near_one, 0.0).0);
    }

    #[test]
    fn bce_gradients_fd_both_labels() {
        let x = Tensor::from_vec(&[4], vec![0.2, 0.5, 0.7, 0.9]);
        fd_check(&|t| bce_scalar_label(t, 1.0), &x, 0.01);
        fd_check(&|t| bce_scalar_label(t, 0.0), &x, 0.01);
    }

    #[test]
    fn bce_saturates_gracefully() {
        let x = Tensor::from_vec(&[2], vec![0.0, 1.0]);
        let (v1, g1) = bce_scalar_label(&x, 1.0);
        assert!(v1.is_finite());
        assert!(g1.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "label must be 0 or 1")]
    fn bce_rejects_soft_labels() {
        let _ = bce_scalar_label(&Tensor::zeros(&[1]), 0.5);
    }

    #[test]
    fn fused_bce_matches_allocating_plus_scale() {
        let p = Tensor::from_vec(&[4], vec![0.2, 0.5, 0.7, 0.9]);
        for label in [0.0, 1.0] {
            for scale in [1.0f32, 0.25] {
                let (v, g) = bce_scalar_label(&p, label);
                let mut fused = Tensor::zeros(&[1]);
                let fv = bce_scalar_label_into(&p, label, scale, &mut fused);
                assert_eq!(fv, v);
                assert_eq!(fused, g.scale(scale));
            }
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite sse gradient"))]
    fn nan_injected_into_gradient_trips_loss_guard() {
        // A NaN already sitting in the accumulator survives the `+=` and
        // must be caught at the loss boundary, not discovered steps later.
        let a = Tensor::from_vec(&[3], vec![0.5, -0.2, 0.8]);
        let b = Tensor::zeros(&[3]);
        let mut grad = Tensor::from_vec(&[3], vec![0.0, f32::NAN, 0.0]);
        let _ = sum_squared_error_acc_into(&a, &b, 1.0, &mut grad);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite sse loss"))]
    fn nan_input_trips_loss_value_guard() {
        let a = Tensor::from_vec(&[2], vec![f32::NAN, 0.0]);
        let b = Tensor::zeros(&[2]);
        let _ = sum_squared_error(&a, &b);
    }

    #[test]
    fn fused_sse_accumulates_scaled_gradient() {
        let a = Tensor::from_vec(&[3], vec![0.5, -0.2, 0.8]);
        let b = Tensor::from_vec(&[3], vec![0.3, 0.1, 0.8]);
        let (v, g) = sum_squared_error(&a, &b);
        let mut acc = Tensor::filled(&[3], 10.0);
        let fv = sum_squared_error_acc_into(&a, &b, 0.5, &mut acc);
        assert_eq!(fv, v);
        for (got, want) in acc.as_slice().iter().zip(g.as_slice()) {
            assert!((got - (10.0 + 0.5 * want)).abs() < 1e-6);
        }
    }
}
