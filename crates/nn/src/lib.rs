//! Minimal CPU neural-network library for the GAN-OPC reproduction.
//!
//! The paper trains its GAN with TensorFlow on a Titan X; no comparable Rust
//! stack is available offline, so this crate implements exactly the pieces
//! the GAN-OPC architecture needs, with *manual* (per-layer) backpropagation:
//!
//! * [`Tensor`] — dense NCHW `f32` tensors;
//! * [`layers`] — [`layers::Conv2d`], [`layers::ConvTranspose2d`] (the
//!   encoder/decoder convolutions of Fig. 4), [`layers::Linear`],
//!   [`layers::BatchNorm2d`], activations, [`layers::Flatten`] and the
//!   [`layers::Sequential`] container;
//! * [`loss`] — mean-squared-error and binary-cross-entropy losses with
//!   their input gradients (Eq. (7)–(10) assemble from these);
//! * [`optim`] — SGD with momentum and Adam, operating on the parameter
//!   visitation order of a network;
//! * [`init`] — seeded He/Xavier initialization so training runs are
//!   reproducible.
//!
//! Every differentiable component is validated against central finite
//! differences in its unit tests.
//!
//! # Example
//!
//! ```
//! use ganopc_nn::{layers::{Conv2d, Sequential, Relu}, Tensor};
//!
//! let mut net = Sequential::new();
//! net.push(Conv2d::new(1, 4, 3, 1, 1, 7));
//! net.push(Relu::new());
//! let x = Tensor::zeros(&[2, 1, 8, 8]);
//! let y = net.forward(&x, true);
//! assert_eq!(y.shape(), &[2, 4, 8, 8]);
//! ```

pub mod checkpoint;
pub mod gemm;
pub mod guard;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool;
mod tensor;

pub use tensor::Tensor;

use std::error::Error;
use std::fmt;

/// Errors surfaced by network serialization and shape plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two tensors (or a tensor and a layer) disagree on shape.
    ShapeMismatch(String),
    /// A serialized parameter blob does not match the network.
    LoadMismatch(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            NnError::LoadMismatch(msg) => write!(f, "parameter load mismatch: {msg}"),
        }
    }
}

impl Error for NnError {}
