//! Debug-build numeric invariant guards.
//!
//! A NaN or infinity entering the training update poisons every weight
//! within a step or two and surfaces hundreds of iterations later as a flat
//! loss curve. These guards pin the failure to the boundary where the bad
//! value first appears — loss values as they are computed, gradients as the
//! optimizer consumes them. Every check compiles to nothing in release
//! builds (`cfg!(debug_assertions)` folds to `false`), so the hot paths pay
//! for them only while debugging; see DESIGN.md §12.

/// Asserts that a scalar (typically a loss value) is finite.
///
/// # Panics
///
/// Panics in debug builds when `v` is NaN or infinite; no-op in release.
#[inline]
pub fn check_finite_scalar(what: &str, v: f64) {
    if cfg!(debug_assertions) {
        // PANIC: debug-build numeric guard — a non-finite loss means the
        // computation feeding it has already diverged; fail at the boundary.
        assert!(v.is_finite(), "non-finite {what}: {v}");
    }
}

/// Asserts that every element of a slice (typically a gradient buffer) is
/// finite, reporting the first offending index.
///
/// # Panics
///
/// Panics in debug builds on the first NaN/infinite element; no-op in
/// release.
#[inline]
pub fn check_finite_slice(what: &str, xs: &[f32]) {
    if !cfg!(debug_assertions) {
        return;
    }
    if let Some((i, &v)) = xs.iter().enumerate().find(|&(_, v)| !v.is_finite()) {
        // PANIC: debug-build numeric guard — a non-finite gradient element
        // would silently poison the parameter update it feeds.
        panic!("non-finite {what} at index {i} of {}: {v}", xs.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass() {
        check_finite_scalar("loss", 0.25);
        check_finite_slice("grad", &[0.0, -1.5, 3.0e8]);
        check_finite_slice("grad", &[]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite loss"))]
    fn nan_scalar_trips_in_debug() {
        // In release builds the guard is compiled out and this test passes
        // trivially (the should_panic expectation is debug-only).
        check_finite_scalar("loss", f64::NAN);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "index 2"))]
    fn infinity_reports_first_offending_index() {
        check_finite_slice("grad", &[1.0, 2.0, f32::INFINITY, f32::NAN]);
    }
}
