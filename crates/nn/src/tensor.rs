//! Dense `f32` tensors with NCHW conventions.

use crate::pool;
use serde::{Deserialize, Serialize};

/// Minimum element count before an element-wise op is split across the
/// worker pool; below this the thread hand-off costs more than it saves.
const PAR_ELEMWISE_MIN: usize = 1 << 16;

/// A dense row-major tensor of up to four dimensions.
///
/// Convolutional layers interpret 4-D tensors as `[N, C, H, W]`; linear
/// layers interpret 2-D tensors as `[N, features]`.
///
/// ```
/// use ganopc_nn::Tensor;
/// let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or any zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = check_shape(shape);
        Tensor { shape: shape.to_vec(), data: vec![0.0; len] }
    }

    /// A tensor filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        let len = check_shape(shape);
        Tensor { shape: shape.to_vec(), data: vec![value; len] }
    }

    /// Wraps a buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` disagrees with the shape product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let len = check_shape(shape);
        assert_eq!(data.len(), len, "tensor buffer size mismatch");
        Tensor { shape: shape.to_vec(), data }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements (never for valid
    /// tensors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes into the flat buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element by multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank or bound violations.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Writes an element by multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank or bound violations.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "tensor rank mismatch");
        let mut flat = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for dim {i} (size {dim})");
            flat = flat * dim + ix;
        }
        flat
    }

    /// Interprets as `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 4-D.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.shape.len(), 4, "expected a 4-D tensor, got {:?}", self.shape);
        (self.shape[0], self.shape[1], self.shape[2], self.shape[3])
    }

    /// Interprets as `[N, F]`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.shape.len(), 2, "expected a 2-D tensor, got {:?}", self.shape);
        (self.shape[0], self.shape[1])
    }

    /// Reshapes without copying.
    ///
    /// # Panics
    ///
    /// Panics when the element counts disagree.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let len = check_shape(shape);
        assert_eq!(len, self.data.len(), "reshape changes element count");
        self.shape = shape.to_vec();
        self
    }

    /// Resizes in place to `shape`, reusing the existing buffer capacity.
    /// Contents are unspecified afterwards — every caller is expected to
    /// overwrite the buffer. Once a tensor has been resized to its largest
    /// shape, further `resize` calls never touch the allocator.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or any zero dimension.
    pub fn resize(&mut self, shape: &[usize]) {
        let len = check_shape(shape);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Reinterprets the shape in place without touching the data — the
    /// buffer-reusing counterpart of [`Tensor::reshape`].
    ///
    /// # Panics
    ///
    /// Panics when the element counts disagree.
    pub fn set_shape(&mut self, shape: &[usize]) {
        let len = check_shape(shape);
        assert_eq!(len, self.data.len(), "reshape changes element count");
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Copies shape and contents from `src`, reusing this tensor's capacity.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize(&src.shape);
        self.data.copy_from_slice(&src.data);
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise map into a new tensor (parallel for large tensors).
    pub fn map<F: Fn(f32) -> f32 + Sync>(&self, f: F) -> Tensor {
        let mut data = self.data.clone();
        par_unary(&mut data, |chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
        Tensor { shape: self.shape.clone(), data }
    }

    /// `self + other`, element-wise (parallel for large tensors).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "tensor add shape mismatch");
        let mut data = self.data.clone();
        par_binary(&mut data, &other.data, |dst, src| {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        });
        Tensor { shape: self.shape.clone(), data }
    }

    /// `self - other`, element-wise (parallel for large tensors).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "tensor sub shape mismatch");
        let mut data = self.data.clone();
        par_binary(&mut data, &other.data, |dst, src| {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a -= b;
            }
        });
        Tensor { shape: self.shape.clone(), data }
    }

    /// `self * s`, element-wise.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place accumulate `self += other * s` (parallel for large tensors).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape, other.shape, "tensor accumulate shape mismatch");
        par_binary(&mut self.data, &other.data, |dst, src| {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b * s;
            }
        });
    }

    /// Sum of elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Concatenates tensors along the channel axis (dim 1) — used to build
    /// the `(Z_t, M)` pair input of the GAN-OPC discriminator.
    ///
    /// # Panics
    ///
    /// Panics unless all tensors are 4-D and agree on `N, H, W`.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let (n, _, h, w) = parts[0].dims4();
        let total_c: usize = parts
            .iter()
            .map(|p| {
                let (pn, pc, ph, pw) = p.dims4();
                assert_eq!((pn, ph, pw), (n, h, w), "concat dims mismatch");
                pc
            })
            .sum();
        let mut out = Tensor::zeros(&[n, total_c, h, w]);
        let plane = h * w;
        for ni in 0..n {
            let mut c0 = 0usize;
            for p in parts {
                let pc = p.shape()[1];
                let src = &p.data[ni * pc * plane..(ni + 1) * pc * plane];
                let dst_start = (ni * total_c + c0) * plane;
                out.data[dst_start..dst_start + pc * plane].copy_from_slice(src);
                c0 += pc;
            }
        }
        out
    }

    /// Buffer-reusing variant of [`Tensor::concat_channels`]: writes the
    /// channel concatenation into `self`, resizing it in place.
    ///
    /// # Panics
    ///
    /// Panics unless all tensors are 4-D and agree on `N, H, W`, or when
    /// `self` aliases one of the parts (enforced by borrow rules).
    pub fn concat_channels_into(&mut self, parts: &[&Tensor]) {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let (n, _, h, w) = parts[0].dims4();
        let total_c: usize = parts
            .iter()
            .map(|p| {
                let (pn, pc, ph, pw) = p.dims4();
                assert_eq!((pn, ph, pw), (n, h, w), "concat dims mismatch");
                pc
            })
            .sum();
        self.resize(&[n, total_c, h, w]);
        let plane = h * w;
        for ni in 0..n {
            let mut c0 = 0usize;
            for p in parts {
                let pc = p.shape()[1];
                let src = &p.data[ni * pc * plane..(ni + 1) * pc * plane];
                let dst_start = (ni * total_c + c0) * plane;
                self.data[dst_start..dst_start + pc * plane].copy_from_slice(src);
                c0 += pc;
            }
        }
    }

    /// Copies channels `[c0, c0 + count)` of a 4-D tensor into `out`
    /// (resized in place) — the buffer-reusing, single-group counterpart of
    /// [`Tensor::split_channels`].
    ///
    /// # Panics
    ///
    /// Panics when the channel range is out of bounds.
    pub fn extract_channels_into(&self, c0: usize, count: usize, out: &mut Tensor) {
        let (n, c, h, w) = self.dims4();
        assert!(count > 0 && c0 + count <= c, "channel range {c0}..{} out of {c}", c0 + count);
        out.resize(&[n, count, h, w]);
        let plane = h * w;
        for ni in 0..n {
            let src_start = (ni * c + c0) * plane;
            let dst_start = ni * count * plane;
            out.data[dst_start..dst_start + count * plane]
                .copy_from_slice(&self.data[src_start..src_start + count * plane]);
        }
    }

    /// Splits a 4-D tensor back into channel groups of the given sizes —
    /// the inverse of [`Tensor::concat_channels`].
    ///
    /// # Panics
    ///
    /// Panics when the sizes do not sum to the channel count.
    pub fn split_channels(&self, sizes: &[usize]) -> Vec<Tensor> {
        let (n, c, h, w) = self.dims4();
        assert_eq!(sizes.iter().sum::<usize>(), c, "split sizes must cover all channels");
        let plane = h * w;
        let mut out = Vec::with_capacity(sizes.len());
        let mut c0 = 0usize;
        for &sc in sizes {
            let mut part = Tensor::zeros(&[n, sc, h, w]);
            for ni in 0..n {
                let src_start = (ni * c + c0) * plane;
                let dst_start = ni * sc * plane;
                part.data[dst_start..dst_start + sc * plane]
                    .copy_from_slice(&self.data[src_start..src_start + sc * plane]);
            }
            out.push(part);
            c0 += sc;
        }
        out
    }
}

fn check_shape(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape cannot be empty");
    assert!(shape.iter().all(|&d| d > 0), "zero-sized tensor dimension in {shape:?}");
    shape.iter().product()
}

/// Applies `f` to chunks of `dst`, splitting across the worker pool when the
/// buffer is large. Chunk boundaries never affect results because `f` is
/// element-wise.
fn par_unary(dst: &mut [f32], f: impl Fn(&mut [f32]) + Sync) {
    if par_threads(dst.len()) <= 1 {
        f(dst);
        return;
    }
    let total = dst.len();
    let view = pool::DisjointMut::new(dst);
    pool::run_chunks(total, |r| {
        // SAFETY: run_chunks ranges partition 0..total, so each chunk's
        // view is disjoint from every other chunk's.
        f(unsafe { view.slice_mut(r) });
    });
}

/// Applies `f` to corresponding chunks of `dst` and `src` (same length),
/// splitting across the worker pool when the buffers are large.
fn par_binary(dst: &mut [f32], src: &[f32], f: impl Fn(&mut [f32], &[f32]) + Sync) {
    debug_assert_eq!(dst.len(), src.len());
    if par_threads(dst.len()) <= 1 {
        f(dst, src);
        return;
    }
    let total = dst.len();
    let view = pool::DisjointMut::new(dst);
    pool::run_chunks(total, |r| {
        // SAFETY: run_chunks ranges partition 0..total, so each chunk's
        // dst view is disjoint from every other chunk's.
        f(unsafe { view.slice_mut(r.clone()) }, &src[r]);
    });
}

fn par_threads(len: usize) -> usize {
    if len < PAR_ELEMWISE_MIN || pool::in_worker() {
        1
    } else {
        pool::max_threads()
    }
}

// The matrix-multiply kernels behind the layers live in [`crate::gemm`]
// (cache-blocked, register-tiled, pool-parallel); the layers call the
// `_into` variants directly, so these aliases only serve the tests below.
#[cfg(test)]
pub(crate) use crate::gemm::{matmul, matmul_nt, matmul_tn};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 0, 1]), 5.0);
        assert_eq!(t.at(&[1, 1, 1]), 7.0);
        assert_eq!(t.len(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn at_wrong_rank() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[0]);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.sub(&b).as_slice(), &[0.5, 1.5, 2.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.add_scaled_assign(&b, -2.0);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.scale(-1.0).max_abs(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|i| i as f32).collect());
        let b = Tensor::from_vec(&[2, 2, 2, 2], (100..116).map(|i| i as f32).collect());
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 3, 2, 2]);
        // Batch 0 channel 0 comes from a, channels 1-2 from b.
        assert_eq!(cat.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(cat.at(&[0, 1, 0, 0]), 100.0);
        assert_eq!(cat.at(&[1, 0, 0, 0]), 4.0);
        assert_eq!(cat.at(&[1, 2, 1, 1]), 115.0);
        let parts = cat.split_channels(&[1, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn matmul_reference() {
        // [2x3] · [3x2]
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let c = matmul(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let m = 3;
        let k = 4;
        let n = 2;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.7).cos()).collect();
        let c = matmul(&a, &b, m, k, n);
        // Build Aᵀ stored [k×m] and check matmul_tn reproduces C.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        assert_eq!(matmul_tn(&at, &b, m, k, n), c);
        // Build Bᵀ stored [n×k] and check matmul_nt reproduces C.
        let mut bt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let c2 = matmul_nt(&a, &bt, m, k, n);
        for (x, y) in c.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "zero-sized tensor dimension")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(&[2, 0, 2]);
    }
}
