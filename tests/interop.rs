//! Interoperability integration tests: text layouts, polygons, MB-OPC,
//! checkpoints and the flow guards, exercised across crates.

use gan_opc::core::{FlowConfig, GanOpcFlow, Generator};
use gan_opc::geometry::polygon::Polygon;
use gan_opc::geometry::textfmt;
use gan_opc::geometry::{Layout, Rect};
use gan_opc::litho::{Field, LithoModel, OpticalConfig};
use gan_opc::mbopc::{MbOpcConfig, MbOpcEngine};

fn small_litho(size: usize) -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / size as f64);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 6;
    LithoModel::new(cfg, size, size).unwrap()
}

#[test]
fn text_layout_feeds_every_opc_flow() {
    // A user-authored clip with a polygon, loaded from the text format and
    // pushed through MB-OPC and the GAN-OPC flow.
    let text = "\
frame 0 0 2048 2048
rect 400 300 480 1500
poly 800,300 1200,300 1200,380 880,380 880,1500 800,1500
";
    let clip = textfmt::parse_layout(text).unwrap();
    assert_eq!(clip.shapes().len(), 3);

    let mut mb = MbOpcEngine::new(small_litho(64), MbOpcConfig::fast());
    let mb_result = mb.optimize(&clip).unwrap();
    assert!(mb_result.binary_l2_nm2.is_finite());

    let mut fcfg = FlowConfig::fast();
    fcfg.refinement.max_iterations = 10;
    let mut flow = GanOpcFlow::new(fcfg).unwrap();
    let target: Field = clip.rasterize_raster(64, 64).binarize(0.5);
    let flow_result = flow.optimize(&target).unwrap();
    assert!(flow_result.l2_nm2.is_finite());
}

#[test]
fn polygon_and_rect_representations_print_identically() {
    // The same L-shape as a polygon vs as two rects must rasterize and
    // print identically.
    let poly = Polygon::new(vec![
        (400, 300),
        (1200, 300),
        (1200, 380),
        (480, 380),
        (480, 1500),
        (400, 1500),
    ])
    .unwrap();
    let mut as_poly = Layout::new(Rect::new(0, 0, 2048, 2048));
    as_poly.push_polygon(&poly);
    let mut as_rects = Layout::new(Rect::new(0, 0, 2048, 2048));
    as_rects.push(Rect::new(400, 300, 1200, 380));
    as_rects.push(Rect::new(400, 380, 480, 1500));

    assert_eq!(as_poly.pattern_area(), as_rects.pattern_area());
    let ra = as_poly.rasterize_raster(64, 64);
    let rb = as_rects.rasterize_raster(64, 64);
    assert_eq!(ra, rb);
    let model = small_litho(64);
    assert_eq!(model.print_nominal(&ra), model.print_nominal(&rb));
}

#[test]
fn flow_halo_removes_far_field_generator_artifacts() {
    // Feed the refinement a target with a single wire; with the halo on,
    // the generator_mask (reported pre-refinement) must be empty far away
    // from it regardless of what the untrained generator emitted.
    let mut cfg = FlowConfig::fast();
    cfg.refinement.max_iterations = 4;
    cfg.mask_halo_nm = Some(150.0);
    let mut flow = GanOpcFlow::new(cfg).unwrap();
    let mut target = Field::zeros(64, 64);
    for y in 24..40 {
        for x in 30..34 {
            target.set(y, x, 1.0);
        }
    }
    let result = flow.optimize(&target).unwrap();
    // 150 nm halo at 32 nm/px is ~5 px; pixels 15+ px away must be zero.
    for y in 0..8 {
        for x in 0..8 {
            assert_eq!(
                result.generator_mask.get(y, x),
                0.0,
                "artifact survived the halo at ({y},{x})"
            );
        }
    }
    // Feature floor: every target pixel is seeded in the refinement input.
    for y in 24..40 {
        for x in 30..34 {
            assert!(result.generator_mask.get(y, x) >= 0.6);
        }
    }
}

#[test]
fn generator_checkpoint_file_roundtrip() {
    let dir = std::env::temp_dir().join("ganopc-interop-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.ckpt");

    let mut original = Generator::new(32, 4, 77);
    // Nudge batch-norm state so buffers matter.
    let x = gan_opc::nn::init::uniform(&[2, 1, 32, 32], 0.0, 1.0, 5);
    let _ = original.forward(&x, true);
    original.save(&path).unwrap();

    let mut restored = Generator::new(32, 4, 123);
    restored.load(&path).unwrap();
    assert_eq!(restored.forward(&x, false), original.forward(&x, false));

    // Mismatched architectures are rejected.
    let mut wrong = Generator::new(16, 4, 0);
    assert!(wrong.load(&path).is_err());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sraf_bars_respect_drc_spacing_to_main_features() {
    use gan_opc::mbopc::sraf::{insert_srafs, SrafRules};
    let clip =
        gan_opc::geometry::ClipSynthesizer::new(gan_opc::geometry::DesignRules::m1_32nm(), 2048, 6)
            .synthesize(42);
    let rules = SrafRules::default();
    let bars = insert_srafs(&clip, &rules);
    for bar in &bars {
        for shape in clip.shapes() {
            assert!(bar.gap(shape) >= rules.gap_nm, "bar {bar} too close to {shape}");
        }
    }
}
