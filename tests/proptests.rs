//! Property-based cross-crate invariants (proptest).

use gan_opc::fft::{spectrum, Complex, Direction, Fft2d, RealFft2d};
use gan_opc::geometry::layout::union_area;
use gan_opc::geometry::raster::Raster;
use gan_opc::geometry::{Layout, Rect};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0i64..1800, 0i64..1800, 20i64..240, 20i64..240)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT forward→inverse is the identity (up to f32 rounding).
    #[test]
    fn fft_roundtrip_is_identity(values in prop::collection::vec(-10.0f32..10.0, 256)) {
        let plan = Fft2d::new(16, 16).unwrap();
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        for (c, &v) in buf.iter().zip(&values) {
            prop_assert!((c.re - v).abs() < 1e-2);
            prop_assert!(c.im.abs() < 1e-2);
        }
    }

    /// Parseval: FFT preserves energy (with the 1/N convention).
    #[test]
    fn fft_parseval(values in prop::collection::vec(-4.0f32..4.0, 64)) {
        let plan = Fft2d::new(8, 8).unwrap();
        let spec = plan.forward_real(&values).unwrap();
        let time: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
        let freq: f64 = spec.iter().map(|c| c.norm_sqr() as f64).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() <= 1e-3 * time.max(1.0));
    }

    /// Convolution with a delta kernel is the identity.
    #[test]
    fn delta_convolution_identity(values in prop::collection::vec(0.0f32..1.0, 64)) {
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[4] = Complex::ONE;
        let ks = spectrum::KernelSpectrum::new(&kernel, 3, 8, 8).unwrap();
        let plan = RealFft2d::new(8, 8).unwrap();
        let out = spectrum::convolve_real(&plan, &values, &ks).unwrap();
        for (o, &v) in out.iter().zip(&values) {
            prop_assert!((o.re - v).abs() < 1e-3);
        }
    }

    /// Union area is monotone, bounded by the sum of areas, and at least
    /// the max individual area.
    #[test]
    fn union_area_bounds(rects in prop::collection::vec(rect_strategy(), 1..12)) {
        let union = union_area(&rects);
        let sum: i64 = rects.iter().map(Rect::area).sum();
        let max = rects.iter().map(Rect::area).max().unwrap();
        prop_assert!(union <= sum);
        prop_assert!(union >= max);
        // Adding a rect never shrinks the union.
        let mut grown = rects.clone();
        grown.push(Rect::from_origin_size(0, 0, 50, 50));
        prop_assert!(union_area(&grown) >= union);
    }

    /// Rasterization conserves pattern area within a pixel-boundary bound.
    #[test]
    fn rasterization_conserves_area(rects in prop::collection::vec(rect_strategy(), 1..8)) {
        let frame = Rect::new(0, 0, 2048, 2048);
        let clip = Layout::with_shapes(frame, rects);
        let raster = clip.rasterize_raster(128, 128);
        let px_area = 16.0 * 16.0;
        let raster_area = raster.sum() as f64 * px_area;
        let exact = clip.pattern_area() as f64;
        // Anti-aliased rasterization of axis-aligned rects is near-exact;
        // allow overlap-clamping slack.
        prop_assert!(raster_area <= exact * 1.02 + px_area);
        let sum_area: f64 = clip.shapes().iter().map(|r| r.area() as f64).sum();
        let overlap_slack = sum_area - exact;
        prop_assert!(raster_area + overlap_slack >= exact * 0.98 - px_area);
    }

    /// Average pooling preserves the mean exactly.
    #[test]
    fn avg_pool_preserves_mean(values in prop::collection::vec(0.0f32..1.0, 64)) {
        let r = Raster::from_vec(8, 8, values);
        let p = r.avg_pool(4);
        prop_assert!((p.mean() - r.mean()).abs() < 1e-5);
    }

    /// Bilinear upsampling stays within the input range and preserves the
    /// values of a constant raster.
    #[test]
    fn bilinear_upsample_range(values in prop::collection::vec(0.0f32..1.0, 16)) {
        let r = Raster::from_vec(4, 4, values.clone());
        let u = r.upsample_bilinear(4);
        let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &v in u.as_slice() {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }

    /// Binarization is idempotent.
    #[test]
    fn binarize_idempotent(values in prop::collection::vec(0.0f32..1.0, 32)) {
        let r = Raster::from_vec(4, 8, values);
        let b = r.binarize(0.5);
        prop_assert_eq!(b.binarize(0.5), b.clone());
        prop_assert!(b.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
