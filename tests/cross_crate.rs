//! Cross-crate integration: geometry → litho → metrics consistency.

use gan_opc::geometry::synthesis::benchmark_suite;
use gan_opc::geometry::{drc, ClipSynthesizer, DesignRules};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::metrics::{break_count, bridge_count, connected_components, squared_l2_nm2};
use gan_opc::litho::{LithoModel, OpticalConfig};

fn small_litho(size: usize) -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / size as f64);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 8;
    LithoModel::new(cfg, size, size).unwrap()
}

#[test]
fn synthesized_clip_prints_without_bridging_after_ilt() {
    // A DRC-clean clip, optimized with ILT, must not short distinct nets:
    // that is exactly what the Table 1 spacing rules guarantee optically.
    let rules = DesignRules::m1_32nm();
    let clip = ClipSynthesizer::new(rules, 2048, 6).synthesize(77);
    assert!(drc::is_clean(&clip, &rules));
    let target = clip.rasterize_raster(64, 64).binarize(0.5);

    let mut cfg = IltConfig::fast();
    cfg.max_iterations = 40;
    let mut engine = IltEngine::new(small_litho(64), cfg);
    let result = engine.optimize(&target).unwrap();
    assert_eq!(bridge_count(&result.wafer, &target), 0, "optical short on DRC-clean clip");
    assert_eq!(break_count(&result.wafer, &target), 0, "open wire after ILT");
}

#[test]
fn rasterization_component_count_matches_geometry() {
    // Each connected group of shapes becomes one raster component (at a
    // resolution fine enough to separate minimum spacing).
    let rules = DesignRules::m1_32nm();
    let clip = ClipSynthesizer::new(rules, 2048, 5).synthesize(3);
    // 256 px on 2048 nm = 8 nm/px; 60 nm gaps span >= 7 px.
    let raster = clip.rasterize_raster(256, 256).binarize(0.5);
    let (_, n_raster) = connected_components(&raster, 0.5);
    // Count geometric components by union-find over touching rects.
    let shapes = clip.shapes();
    let mut parent: Vec<usize> = (0..shapes.len()).collect();
    fn find(p: &mut Vec<usize>, i: usize) -> usize {
        if p[i] != i {
            let r = find(p, p[i]);
            p[i] = r;
        }
        p[i]
    }
    for i in 0..shapes.len() {
        for j in i + 1..shapes.len() {
            if shapes[i].gap(&shapes[j]) == 0 {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut roots: Vec<usize> = (0..shapes.len()).map(|i| find(&mut parent, i)).collect();
    roots.sort_unstable();
    roots.dedup();
    assert_eq!(n_raster, roots.len(), "raster components vs geometric groups");
}

#[test]
fn pattern_area_survives_raster_and_print_pipeline() {
    // Union area ≈ raster coverage ≈ (roughly) printed area after OPC.
    let suite = benchmark_suite(2048);
    let clip = &suite[0];
    let raster = clip.layout.rasterize_raster(128, 128);
    let px_nm2 = 16.0 * 16.0;
    let raster_area = raster.sum() as f64 * px_nm2;
    let exact = clip.layout.pattern_area() as f64;
    assert!((raster_area - exact).abs() / exact < 0.02, "raster {raster_area} vs exact {exact}");
}

#[test]
fn dose_monotonicity_of_wafer_area() {
    // For any mask, printed area must be non-decreasing in dose.
    let clip = ClipSynthesizer::new(DesignRules::m1_32nm(), 2048, 6).synthesize(8);
    let mask = clip.rasterize_raster(64, 64).binarize(0.5);
    let model = small_litho(64);
    let mut last = -1.0f32;
    for dose in [0.9f32, 0.95, 1.0, 1.05, 1.1] {
        let area = model.print(&mask, dose).sum();
        assert!(area >= last, "dose {dose}: area {area} < previous {last}");
        last = area;
    }
}

#[test]
fn l2_metric_agrees_between_crates() {
    // litho::metrics::squared_l2_nm2 at 1 nm/px equals the raw raster
    // distance from the geometry crate.
    let a = gan_opc::litho::Field::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
    let b = gan_opc::litho::Field::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
    assert_eq!(squared_l2_nm2(&a, &b, 1.0), a.squared_l2_distance(&b));
}
