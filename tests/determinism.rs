//! Reproducibility: every stochastic stage is seeded, so identical seeds
//! must give bit-identical results.

use gan_opc::core::{Discriminator, GanTrainer, Generator, OpcDataset, TrainConfig};
use gan_opc::geometry::synthesis::benchmark_suite;
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::{LithoModel, OpticalConfig};

fn small_litho() -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(32.0);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 6;
    LithoModel::new(cfg, 64, 64).unwrap()
}

#[test]
fn benchmark_suite_is_stable() {
    let a = benchmark_suite(2048);
    let b = benchmark_suite(2048);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.layout, y.layout, "case {}", x.id);
    }
}

#[test]
fn ilt_is_deterministic() {
    let clip = &benchmark_suite(2048)[3];
    let target = clip.layout.rasterize_raster(64, 64).binarize(0.5);
    let run = || {
        let mut cfg = IltConfig::fast();
        cfg.max_iterations = 10;
        let mut engine = IltEngine::new(small_litho(), cfg);
        engine.optimize(&target).unwrap()
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.mask, r2.mask);
    assert_eq!(r1.l2_history, r2.l2_history);
}

#[test]
fn training_is_deterministic() {
    let dataset = OpcDataset::synthesize(32, 2, IltConfig::fast(), 31).unwrap();
    let run = || {
        let mut trainer = GanTrainer::new(
            Generator::new(32, 4, 8),
            Discriminator::new(32, 4, 9),
            TrainConfig::fast(),
        );
        let stats = trainer.train(&dataset);
        let (mut g, _) = trainer.into_networks();
        (stats, g.export_params())
    };
    let (s1, p1) = run();
    let (s2, p2) = run();
    assert_eq!(s1, s2);
    assert_eq!(p1, p2);
}

#[test]
fn litho_model_calibration_is_stable() {
    let m1 = small_litho();
    let m2 = small_litho();
    assert_eq!(m1.threshold(), m2.threshold());
    assert_eq!(m1.num_kernels(), m2.num_kernels());
}
