//! End-to-end integration: dataset synthesis → ILT-guided pre-training →
//! adversarial training → GAN-OPC flow, at miniature scale.

use gan_opc::core::pretrain::{pretrain_generator, PretrainConfig};
use gan_opc::core::{
    Discriminator, FlowConfig, GanOpcFlow, GanTrainer, Generator, OpcDataset, TrainConfig,
};
use gan_opc::ilt::IltConfig;
use gan_opc::litho::{LithoModel, OpticalConfig};

fn tiny_litho(size: usize) -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / size as f64);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 6;
    LithoModel::new(cfg, size, size).unwrap()
}

#[test]
fn full_pipeline_runs_and_improves() {
    // 1. Dataset.
    let dataset = OpcDataset::synthesize(32, 3, IltConfig::fast(), 99).unwrap();
    assert_eq!(dataset.len(), 3);

    // 2. Pre-training reduces lithography error.
    let model = tiny_litho(32);
    let mut generator = Generator::new(32, 4, 5);
    let mut pcfg = PretrainConfig::fast();
    pcfg.iterations = 10;
    pcfg.lr = 0.05;
    let pre = pretrain_generator(&mut generator, &model, &dataset, &pcfg).unwrap();
    assert!(pre.last().unwrap().litho_error <= pre.first().unwrap().litho_error * 1.2);

    // 3. Adversarial training produces finite losses.
    let mut tcfg = TrainConfig::fast();
    tcfg.iterations = 8;
    let mut trainer = GanTrainer::new(generator, Discriminator::new(32, 4, 6), tcfg);
    let stats = trainer.train(&dataset);
    assert_eq!(stats.len(), 8);
    assert!(stats.iter().all(|s| s.l2_loss.is_finite()));
    let (generator, _) = trainer.into_networks();

    // 4. The flow runs on a held-out clip and beats printing the raw target.
    let mut fcfg = FlowConfig::fast();
    fcfg.net_size = 32;
    fcfg.litho_size = 64;
    fcfg.refinement.max_iterations = 40;
    fcfg.refinement.patience = 40;
    let mut flow = GanOpcFlow::with_generator(fcfg, generator).unwrap();

    let clip =
        gan_opc::geometry::ClipSynthesizer::new(gan_opc::geometry::DesignRules::m1_32nm(), 2048, 6)
            .synthesize(1234);
    let target = clip.rasterize_raster(64, 64).binarize(0.5);
    let result = flow.optimize(&target).unwrap();

    let eval_model = flow.model();
    let no_opc_wafer = eval_model.print_nominal(&target);
    let no_opc_l2 =
        gan_opc::litho::metrics::squared_l2_nm2(&no_opc_wafer, &target, eval_model.pixel_nm());
    assert!(
        result.l2_nm2 <= no_opc_l2,
        "flow ({}) should not lose to no-OPC ({})",
        result.l2_nm2,
        no_opc_l2
    );
}

#[test]
fn weight_snapshot_survives_flow_construction() {
    // Train (briefly), snapshot, rebuild a generator elsewhere, verify the
    // two produce identical masks.
    let dataset = OpcDataset::synthesize(32, 2, IltConfig::fast(), 5).unwrap();
    let mut trainer = GanTrainer::new(
        Generator::new(32, 4, 1),
        Discriminator::new(32, 4, 2),
        TrainConfig::fast(),
    );
    trainer.train(&dataset);
    let (mut trained, _) = trainer.into_networks();
    let snapshot = trained.export_params();

    let (targets, _) = dataset.batch(&[0]);
    let expected = trained.forward(&targets, false);

    let mut restored = Generator::new(32, 4, 999);
    restored.import_params(&snapshot).unwrap();
    let got = restored.forward(&targets, false);
    assert_eq!(got, expected);
}
